#include "catalog/trigger_catalog.h"

#include <ctime>

#include "util/string_util.h"

namespace tman {

namespace {

constexpr char kTriggerSetTable[] = "tman_trigger_set";
constexpr char kTriggerTable[] = "tman_trigger";
constexpr char kSignatureTable[] = "tman_expression_signature";
constexpr char kDataSourceTable[] = "tman_data_source";

/// Schema text codec for persisted stream schemas: "name:type:width" per
/// field, ';'-separated. No field names may contain ':' or ';' (the
/// parser rejects such identifiers anyway).
std::string EncodeSchema(const Schema& schema) {
  std::vector<std::string> fields;
  fields.reserve(schema.num_fields());
  for (const Field& f : schema.fields()) {
    fields.push_back(f.name + ":" + std::string(DataTypeName(f.type)) + ":" +
                     std::to_string(f.width));
  }
  return Join(fields, ";");
}

Result<Schema> DecodeSchema(const std::string& text) {
  std::vector<Field> fields;
  if (text.empty()) return Schema(fields);
  for (const std::string& piece : Split(text, ';')) {
    auto parts = Split(piece, ':');
    if (parts.size() != 3) {
      return Status::Corruption("bad schema text: " + text);
    }
    TMAN_ASSIGN_OR_RETURN(DataType type, DataTypeFromName(parts[1]));
    fields.emplace_back(parts[0], type,
                        static_cast<uint32_t>(std::stoul(parts[2])));
  }
  return Schema(fields);
}

std::string Today() {
  std::time_t now = std::time(nullptr);
  char buf[32];
  std::tm tm_buf;
  localtime_r(&now, &tm_buf);
  std::strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S", &tm_buf);
  return buf;
}

TriggerSetRow DecodeSetRow(const Tuple& t) {
  TriggerSetRow row;
  row.ts_id = static_cast<uint64_t>(t.at(0).as_int());
  row.name = t.at(1).as_string();
  row.comments = t.at(2).is_null() ? "" : t.at(2).as_string();
  row.creation_date = t.at(3).as_string();
  row.is_enabled = t.at(4).as_int() != 0;
  return row;
}

TriggerRow DecodeTriggerRow(const Tuple& t) {
  TriggerRow row;
  row.trigger_id = static_cast<TriggerId>(t.at(0).as_int());
  row.ts_id = static_cast<uint64_t>(t.at(1).as_int());
  row.name = t.at(2).as_string();
  row.comments = t.at(3).is_null() ? "" : t.at(3).as_string();
  row.trigger_text = t.at(4).as_string();
  row.creation_date = t.at(5).as_string();
  row.is_enabled = t.at(6).as_int() != 0;
  return row;
}

SignatureRow DecodeSignatureRow(const Tuple& t) {
  SignatureRow row;
  row.sig_id = static_cast<uint64_t>(t.at(0).as_int());
  row.data_src_id = static_cast<DataSourceId>(t.at(1).as_int());
  row.signature_desc = t.at(2).as_string();
  row.const_table_name = t.at(3).is_null() ? "" : t.at(3).as_string();
  row.constant_set_size = static_cast<uint64_t>(t.at(4).as_int());
  row.constant_set_organization = static_cast<OrgType>(t.at(5).as_int());
  return row;
}

}  // namespace

Status TriggerCatalog::Open() {
  if (!db_->HasTable(kTriggerSetTable)) {
    TMAN_RETURN_IF_ERROR(
        db_->CreateTable(kTriggerSetTable,
                         Schema({{"ts_id", DataType::kInt},
                                 {"name", DataType::kVarchar},
                                 {"comments", DataType::kVarchar},
                                 {"creation_date", DataType::kVarchar},
                                 {"is_enabled", DataType::kInt}}))
            .status());
  }
  if (!db_->HasTable(kTriggerTable)) {
    TMAN_RETURN_IF_ERROR(
        db_->CreateTable(kTriggerTable,
                         Schema({{"trigger_id", DataType::kInt},
                                 {"ts_id", DataType::kInt},
                                 {"name", DataType::kVarchar},
                                 {"comments", DataType::kVarchar},
                                 {"trigger_text", DataType::kVarchar},
                                 {"creation_date", DataType::kVarchar},
                                 {"is_enabled", DataType::kInt}}))
            .status());
    TMAN_RETURN_IF_ERROR(
        db_->CreateIndex("idx_tman_trigger_id", kTriggerTable,
                         {"trigger_id"}));
    TMAN_RETURN_IF_ERROR(
        db_->CreateIndex("idx_tman_trigger_name", kTriggerTable, {"name"}));
  }
  if (!db_->HasTable(kSignatureTable)) {
    TMAN_RETURN_IF_ERROR(
        db_->CreateTable(kSignatureTable,
                         Schema({{"sig_id", DataType::kInt},
                                 {"data_src_id", DataType::kInt},
                                 {"signature_desc", DataType::kVarchar},
                                 {"const_table_name", DataType::kVarchar},
                                 {"constant_set_size", DataType::kInt},
                                 {"constant_set_organization",
                                  DataType::kInt}}))
            .status());
  }
  if (!db_->HasTable(kDataSourceTable)) {
    TMAN_RETURN_IF_ERROR(
        db_->CreateTable(kDataSourceTable,
                         Schema({{"name", DataType::kVarchar},
                                 {"is_local", DataType::kInt},
                                 {"schema_text", DataType::kVarchar}}))
            .status());
  }
  // Restore id counters after reopen.
  TMAN_ASSIGN_OR_RETURN(uint64_t max_tid, MaxTriggerId());
  next_trigger_id_ = max_tid + 1;
  uint64_t max_ts = 0;
  TMAN_RETURN_IF_ERROR(db_->Scan(
      kTriggerSetTable, [&max_ts](const Rid&, const Tuple& t) {
        uint64_t id = static_cast<uint64_t>(t.at(0).as_int());
        if (id > max_ts) max_ts = id;
        return true;
      }));
  next_ts_id_ = max_ts + 1;
  return Status::OK();
}

Result<uint64_t> TriggerCatalog::CreateTriggerSet(const std::string& name,
                                                  const std::string& comments) {
  TMAN_ASSIGN_OR_RETURN(auto existing, GetTriggerSet(name));
  if (existing.has_value()) {
    return Status::AlreadyExists("trigger set already exists: " + name);
  }
  uint64_t id = next_ts_id_++;
  TMAN_RETURN_IF_ERROR(
      db_->Insert(kTriggerSetTable,
                  Tuple({Value::Int(static_cast<int64_t>(id)),
                         Value::String(ToLower(name)),
                         Value::String(comments), Value::String(Today()),
                         Value::Int(1)}))
          .status());
  return id;
}

Result<std::optional<TriggerSetRow>> TriggerCatalog::GetTriggerSet(
    const std::string& name) {
  std::optional<TriggerSetRow> out;
  std::string needle = ToLower(name);
  TMAN_RETURN_IF_ERROR(db_->Scan(
      kTriggerSetTable, [&](const Rid&, const Tuple& t) {
        if (t.at(1).as_string() == needle) {
          out = DecodeSetRow(t);
          return false;
        }
        return true;
      }));
  return out;
}

Result<std::optional<TriggerSetRow>> TriggerCatalog::GetTriggerSetById(
    uint64_t ts_id) {
  std::optional<TriggerSetRow> out;
  TMAN_RETURN_IF_ERROR(db_->Scan(
      kTriggerSetTable, [&](const Rid&, const Tuple& t) {
        if (static_cast<uint64_t>(t.at(0).as_int()) == ts_id) {
          out = DecodeSetRow(t);
          return false;
        }
        return true;
      }));
  return out;
}

Status TriggerCatalog::SetTriggerSetEnabled(const std::string& name,
                                            bool enabled) {
  std::string needle = ToLower(name);
  std::optional<Rid> rid;
  Tuple row;
  TMAN_RETURN_IF_ERROR(db_->Scan(
      kTriggerSetTable, [&](const Rid& r, const Tuple& t) {
        if (t.at(1).as_string() == needle) {
          rid = r;
          row = t;
          return false;
        }
        return true;
      }));
  if (!rid.has_value()) {
    return Status::NotFound("no such trigger set: " + name);
  }
  row.at(4) = Value::Int(enabled ? 1 : 0);
  return db_->Update(kTriggerSetTable, *rid, row);
}

Result<TriggerId> TriggerCatalog::InsertTrigger(
    const std::string& name, uint64_t ts_id, const std::string& comments,
    const std::string& trigger_text) {
  TMAN_ASSIGN_OR_RETURN(auto existing, GetTrigger(name));
  if (existing.has_value()) {
    return Status::AlreadyExists("trigger already exists: " + name);
  }
  TriggerId id = next_trigger_id_++;
  TMAN_RETURN_IF_ERROR(
      db_->Insert(kTriggerTable,
                  Tuple({Value::Int(static_cast<int64_t>(id)),
                         Value::Int(static_cast<int64_t>(ts_id)),
                         Value::String(ToLower(name)),
                         Value::String(comments),
                         Value::String(trigger_text),
                         Value::String(Today()), Value::Int(1)}))
          .status());
  return id;
}

Result<std::optional<Rid>> TriggerCatalog::FindTriggerRid(
    const std::string& name) {
  TMAN_ASSIGN_OR_RETURN(
      std::vector<Rid> rids,
      db_->IndexLookup("idx_tman_trigger_name",
                       {Value::String(ToLower(name))}));
  if (rids.empty()) return std::optional<Rid>();
  return std::optional<Rid>(rids.front());
}

Result<std::optional<TriggerRow>> TriggerCatalog::GetTrigger(
    const std::string& name) {
  TMAN_ASSIGN_OR_RETURN(auto rid, FindTriggerRid(name));
  if (!rid.has_value()) return std::optional<TriggerRow>();
  TMAN_ASSIGN_OR_RETURN(Tuple t, db_->Get(kTriggerTable, *rid));
  return std::optional<TriggerRow>(DecodeTriggerRow(t));
}

Result<std::optional<TriggerRow>> TriggerCatalog::GetTriggerById(
    TriggerId id) {
  TMAN_ASSIGN_OR_RETURN(
      std::vector<Rid> rids,
      db_->IndexLookup("idx_tman_trigger_id",
                       {Value::Int(static_cast<int64_t>(id))}));
  if (rids.empty()) return std::optional<TriggerRow>();
  TMAN_ASSIGN_OR_RETURN(Tuple t, db_->Get(kTriggerTable, rids.front()));
  return std::optional<TriggerRow>(DecodeTriggerRow(t));
}

Status TriggerCatalog::SetTriggerEnabled(const std::string& name,
                                         bool enabled) {
  TMAN_ASSIGN_OR_RETURN(auto rid, FindTriggerRid(name));
  if (!rid.has_value()) return Status::NotFound("no such trigger: " + name);
  TMAN_ASSIGN_OR_RETURN(Tuple t, db_->Get(kTriggerTable, *rid));
  t.at(6) = Value::Int(enabled ? 1 : 0);
  return db_->Update(kTriggerTable, *rid, t);
}

Status TriggerCatalog::DeleteTrigger(const std::string& name) {
  TMAN_ASSIGN_OR_RETURN(auto rid, FindTriggerRid(name));
  if (!rid.has_value()) return Status::NotFound("no such trigger: " + name);
  return db_->Delete(kTriggerTable, *rid);
}

Result<std::vector<TriggerRow>> TriggerCatalog::AllTriggers() {
  std::vector<TriggerRow> out;
  TMAN_RETURN_IF_ERROR(db_->Scan(
      kTriggerTable, [&out](const Rid&, const Tuple& t) {
        out.push_back(DecodeTriggerRow(t));
        return true;
      }));
  return out;
}

Result<uint64_t> TriggerCatalog::NumTriggers() {
  return db_->NumRows(kTriggerTable);
}

Status TriggerCatalog::InsertSignature(const SignatureRow& row) {
  return db_
      ->Insert(kSignatureTable,
               Tuple({Value::Int(static_cast<int64_t>(row.sig_id)),
                      Value::Int(static_cast<int64_t>(row.data_src_id)),
                      Value::String(row.signature_desc),
                      Value::String(row.const_table_name),
                      Value::Int(static_cast<int64_t>(row.constant_set_size)),
                      Value::Int(static_cast<int64_t>(
                          row.constant_set_organization))}))
      .status();
}

Result<std::optional<Rid>> TriggerCatalog::FindSignatureRid(uint64_t sig_id) {
  std::optional<Rid> out;
  TMAN_RETURN_IF_ERROR(db_->Scan(
      kSignatureTable, [&](const Rid& r, const Tuple& t) {
        if (static_cast<uint64_t>(t.at(0).as_int()) == sig_id) {
          out = r;
          return false;
        }
        return true;
      }));
  return out;
}

Status TriggerCatalog::UpdateSignatureStats(uint64_t sig_id, uint64_t size,
                                            OrgType org) {
  TMAN_ASSIGN_OR_RETURN(auto rid, FindSignatureRid(sig_id));
  if (!rid.has_value()) {
    return Status::NotFound("no such signature: " + std::to_string(sig_id));
  }
  TMAN_ASSIGN_OR_RETURN(Tuple t, db_->Get(kSignatureTable, *rid));
  t.at(4) = Value::Int(static_cast<int64_t>(size));
  t.at(5) = Value::Int(static_cast<int64_t>(org));
  return db_->Update(kSignatureTable, *rid, t);
}

Result<std::vector<SignatureRow>> TriggerCatalog::AllSignatures() {
  std::vector<SignatureRow> out;
  TMAN_RETURN_IF_ERROR(db_->Scan(
      kSignatureTable, [&out](const Rid&, const Tuple& t) {
        out.push_back(DecodeSignatureRow(t));
        return true;
      }));
  return out;
}

Status TriggerCatalog::InsertDataSource(const DataSourceRow& row) {
  std::string name = ToLower(row.name);
  bool exists = false;
  TMAN_RETURN_IF_ERROR(db_->Scan(
      kDataSourceTable, [&](const Rid&, const Tuple& t) {
        if (t.at(0).as_string() == name) {
          exists = true;
          return false;
        }
        return true;
      }));
  if (exists) {
    return Status::AlreadyExists("data source already cataloged: " + name);
  }
  return db_
      ->Insert(kDataSourceTable,
               Tuple({Value::String(name),
                      Value::Int(row.is_local_table ? 1 : 0),
                      Value::String(row.is_local_table
                                        ? ""
                                        : EncodeSchema(row.schema))}))
      .status();
}

Status TriggerCatalog::DeleteDataSource(const std::string& name_in) {
  std::string name = ToLower(name_in);
  std::optional<Rid> rid;
  TMAN_RETURN_IF_ERROR(db_->Scan(
      kDataSourceTable, [&](const Rid& r, const Tuple& t) {
        if (t.at(0).as_string() == name) {
          rid = r;
          return false;
        }
        return true;
      }));
  if (!rid.has_value()) {
    return Status::NotFound("no such cataloged data source: " + name);
  }
  return db_->Delete(kDataSourceTable, *rid);
}

Result<std::vector<TriggerCatalog::DataSourceRow>>
TriggerCatalog::AllDataSources() {
  std::vector<DataSourceRow> out;
  Status inner = Status::OK();
  TMAN_RETURN_IF_ERROR(db_->Scan(
      kDataSourceTable, [&](const Rid&, const Tuple& t) {
        DataSourceRow row;
        row.name = t.at(0).as_string();
        row.is_local_table = t.at(1).as_int() != 0;
        if (!row.is_local_table) {
          auto schema = DecodeSchema(t.at(2).as_string());
          if (!schema.ok()) {
            inner = schema.status();
            return false;
          }
          row.schema = *schema;
        }
        out.push_back(std::move(row));
        return true;
      }));
  TMAN_RETURN_IF_ERROR(inner);
  return out;
}

Result<uint64_t> TriggerCatalog::MaxTriggerId() {
  uint64_t max_id = 0;
  TMAN_RETURN_IF_ERROR(db_->Scan(
      kTriggerTable, [&max_id](const Rid&, const Tuple& t) {
        uint64_t id = static_cast<uint64_t>(t.at(0).as_int());
        if (id > max_id) max_id = id;
        return true;
      }));
  return max_id;
}

Result<uint64_t> TriggerCatalog::MaxSignatureId() {
  uint64_t max_id = 0;
  TMAN_RETURN_IF_ERROR(db_->Scan(
      kSignatureTable, [&max_id](const Rid&, const Tuple& t) {
        uint64_t id = static_cast<uint64_t>(t.at(0).as_int());
        if (id > max_id) max_id = id;
        return true;
      }));
  return max_id;
}

}  // namespace tman
