#include "cluster/hash_ring.h"

#include "util/hash.h"

namespace tman {

uint32_t TokenPartition(const UpdateDescriptor& token,
                        const ClusterConfig& config) {
  uint64_t key = MixInt(static_cast<uint64_t>(token.data_source));
  auto ec = config.ec_key_columns.find(token.data_source);
  if (ec != config.ec_key_columns.end()) {
    const Tuple& tuple = token.EffectiveTuple();
    if (ec->second < tuple.size()) {
      key = HashCombine(key, tuple.values()[ec->second].Hash());
    }
  }
  uint32_t parts = config.num_partitions == 0 ? 1 : config.num_partitions;
  return static_cast<uint32_t>(key % parts);
}

HashRing::HashRing(uint32_t virtual_nodes)
    : virtual_nodes_(virtual_nodes == 0 ? 1 : virtual_nodes) {}

void HashRing::AddNode(const std::string& name) {
  if (!members_.insert(name).second) return;
  for (uint32_t v = 0; v < virtual_nodes_; ++v) {
    uint64_t point = HashCombine(HashString(name), MixInt(v));
    // Collisions between members are broken deterministically by name so
    // every process builds the identical ring.
    auto it = ring_.find(point);
    if (it == ring_.end() || name < it->second) ring_[point] = name;
  }
}

void HashRing::RemoveNode(const std::string& name) {
  if (members_.erase(name) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == name) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
  // Re-add surviving members' points that this member's collisions masked.
  for (const std::string& member : members_) {
    for (uint32_t v = 0; v < virtual_nodes_; ++v) {
      uint64_t point = HashCombine(HashString(member), MixInt(v));
      auto slot = ring_.find(point);
      if (slot == ring_.end() || member < slot->second) ring_[point] = member;
    }
  }
}

bool HashRing::HasNode(const std::string& name) const {
  return members_.count(name) != 0;
}

std::vector<std::string> HashRing::nodes() const {
  return std::vector<std::string>(members_.begin(), members_.end());
}

std::string HashRing::OwnerOf(uint64_t key) const {
  if (ring_.empty()) return "";
  auto it = ring_.lower_bound(key);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

PartitionMap BuildPartitionMap(const HashRing& ring, uint64_t epoch,
                               uint32_t num_partitions) {
  PartitionMap map;
  map.epoch = epoch;
  map.owners.resize(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    map.owners[p] = ring.OwnerOf(MixInt(0x9e3779b97f4a7c15ULL + p));
  }
  return map;
}

}  // namespace tman
