#include "cluster/membership.h"

#include <algorithm>

namespace tman {

ClusterMembership::ClusterMembership(MembershipOptions options)
    : options_(options) {}

void ClusterMembership::AddPeer(const std::string& name, uint64_t now_ms) {
  PeerHealth& peer = peers_[name];
  peer.alive = true;
  peer.next_probe_ms = now_ms + options_.heartbeat_interval_ms;
  peer.probe_interval_ms = options_.heartbeat_interval_ms;
}

MembershipActions ClusterMembership::Tick(uint64_t now_ms) {
  MembershipActions actions;
  for (auto& [name, peer] : peers_) {
    if (now_ms < peer.next_probe_ms) continue;
    if (peer.alive) {
      if (peer.ping_outstanding) {
        ++peer.misses;
        ++peer.total_misses;
        peer.ping_outstanding = false;
        if (peer.misses >= options_.miss_threshold) {
          MarkDeadLocked(&peer, now_ms);
          actions.died.push_back(name);
          continue;
        }
      }
      actions.ping.push_back(name);
      peer.next_probe_ms = now_ms + options_.heartbeat_interval_ms;
    } else {
      actions.probe.push_back(name);
      peer.next_probe_ms = now_ms + peer.probe_interval_ms;
      peer.probe_interval_ms = std::min<uint64_t>(
          options_.max_probe_interval_ms,
          static_cast<uint64_t>(
              static_cast<double>(peer.probe_interval_ms) *
              std::max(1.0, options_.probe_backoff)));
    }
  }
  return actions;
}

void ClusterMembership::OnPingSent(const std::string& name, uint64_t nonce) {
  auto it = peers_.find(name);
  if (it == peers_.end()) return;
  it->second.ping_outstanding = true;
  it->second.outstanding_nonce = nonce;
  ++it->second.pings_sent;
}

void ClusterMembership::OnPong(const std::string& name, uint64_t nonce) {
  auto it = peers_.find(name);
  if (it == peers_.end()) return;
  PeerHealth& peer = it->second;
  if (peer.ping_outstanding && nonce != peer.outstanding_nonce) return;
  peer.ping_outstanding = false;
  peer.misses = 0;
  ++peer.pongs_received;
}

bool ClusterMembership::OnChannelDown(const std::string& name,
                                      uint64_t now_ms) {
  auto it = peers_.find(name);
  if (it == peers_.end() || !it->second.alive) return false;
  MarkDeadLocked(&it->second, now_ms);
  return true;
}

void ClusterMembership::MarkAlive(const std::string& name, uint64_t now_ms) {
  auto it = peers_.find(name);
  if (it == peers_.end()) return;
  PeerHealth& peer = it->second;
  peer.alive = true;
  peer.misses = 0;
  peer.ping_outstanding = false;
  peer.probe_interval_ms = options_.heartbeat_interval_ms;
  peer.next_probe_ms = now_ms + options_.heartbeat_interval_ms;
}

void ClusterMembership::MarkDeadLocked(PeerHealth* peer, uint64_t now_ms) {
  peer->alive = false;
  peer->misses = 0;
  peer->ping_outstanding = false;
  ++peer->deaths;
  peer->probe_interval_ms = options_.heartbeat_interval_ms;
  peer->next_probe_ms = now_ms + peer->probe_interval_ms;
}

bool ClusterMembership::IsAlive(const std::string& name) const {
  auto it = peers_.find(name);
  return it != peers_.end() && it->second.alive;
}

std::vector<std::string> ClusterMembership::AlivePeers() const {
  std::vector<std::string> out;
  for (const auto& [name, peer] : peers_) {
    if (peer.alive) out.push_back(name);
  }
  return out;
}

uint64_t ClusterMembership::total_heartbeat_misses() const {
  uint64_t n = 0;
  for (const auto& [name, peer] : peers_) n += peer.total_misses;
  return n;
}

}  // namespace tman
