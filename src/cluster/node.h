#ifndef TRIGGERMAN_CLUSTER_NODE_H_
#define TRIGGERMAN_CLUSTER_NODE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/frame_conn.h"
#include "cluster/hash_ring.h"
#include "core/trigger_manager.h"
#include "ipc/transport.h"
#include "ipc/wire_format.h"

namespace tman {

struct ClusterNodeOptions {
  std::string name = "node";
  ClusterConfig config;

  /// Ingest window granted to each connection at hello (replenished per
  /// ack, so it is also the per-connection in-flight bound).
  uint32_t initial_credits = 1 << 16;

  /// Router-liveness lease (0 = disabled). When an admitted member sees
  /// no router traffic for this long, it self-holds processing: in an
  /// asymmetric (mute) partition the node never observes the channel
  /// close, yet the router — after its heartbeat-miss verdict — may
  /// already be re-routing this node's staged tokens. Mirror the
  /// router's verdict window here (heartbeat_interval * miss_threshold)
  /// so the node stops firing no later than the router stops waiting.
  uint64_t router_lease_ms = 0;

  /// Frame I/O (payload cap + optional ipc.* fault injector).
  FrameIoOptions io;
};

struct ClusterNodeStats {
  uint64_t batches_accepted = 0;
  uint64_t batches_rejected = 0;  // whole-batch partition-moved rejects
  uint64_t tokens_applied = 0;
  uint64_t tokens_deduped = 0;
  uint64_t maps_installed = 0;
  uint64_t tokens_fenced = 0;  // recovered tokens discarded by rejoin fences
  uint64_t lease_holds = 0;    // self-holds from router-liveness lease expiry
};

/// One cluster member: partition-ownership enforcement, partition-map
/// installs (with durable epoch + rejoin fences) and the ingest protocol,
/// layered over an existing TriggerManager. Two ways to drive it:
///
///   * pump mode (deterministic tests, bench, the pollable loopback):
///     AddConnection() hands it PollableTransports and Pump() advances
///     all connections one bounded step — no threads;
///   * hook mode (real sockets): a TmanServer owns the connections and
///     calls AdmitToken / HandlePartitionMap through its cluster hooks
///     (TmanServerOptions), so the production server reuses exactly the
///     logic the deterministic tests proved.
///
/// The partition-map epoch is persisted through the TriggerManager's
/// durable meta (WAL kMeta record, carried across checkpoints): a node
/// that rejoins after a crash recovers its last installed epoch and can
/// tell how stale its map is. Rejoin fences (see PartitionMapFrame) are
/// applied before the map takes effect.
///
/// Thread-safe where hook mode needs it (map state under a mutex);
/// Pump() itself is single-owner.
class ClusterNode {
 public:
  ClusterNode(TriggerManager* tman, ClusterNodeOptions options);

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  const std::string& name() const { return options_.name; }
  uint64_t epoch() const;

  /// Ownership check for one token: OK when this node owns the token's
  /// partition under the installed map, retryable Unavailable otherwise.
  /// Bound to TmanServerOptions::cluster_admit in hook mode.
  Status AdmitToken(const UpdateDescriptor& token);

  /// Installs a partition map: validates the epoch against the durable
  /// one, applies rejoin fences to recovered WAL tokens, persists the new
  /// epoch, and releases the recovery hold. Bound to
  /// TmanServerOptions::cluster_map in hook mode.
  PartitionMapAckFrame HandlePartitionMap(const PartitionMapFrame& frame);

  /// True while the node must not process staged tokens, because the
  /// router's fences may be about to invalidate some of them: (a) it
  /// crashed with a cluster epoch installed and recovered pending WAL
  /// tokens, (b) it lost the router's channel while an admitted member
  /// (false-death window: the router may be re-routing its staged work
  /// right now), or (c) the router-liveness lease expired (mute
  /// partition — same window, unobservable channel). Released by the
  /// next partition-map install, which carries the authoritative fences.
  /// The hold is also enforced inside the engine (the TriggerManager's
  /// task queue pauses), so every driver — threaded pool or external
  /// pumper — is bound by it; this accessor remains for introspection.
  bool processing_held() const;

  // --- hook mode (TmanServer owns the sockets) ---------------------------

  /// The router's connection dropped (TmanServerOptions::
  /// cluster_router_lost): enter the false-death hold if admitted.
  void OnRouterChannelLost();

  /// A frame arrived on the router's connection at `now_ms`
  /// (TmanServerOptions::cluster_activity): renews the liveness lease
  /// and releases a lease self-hold — traffic on the channel means the
  /// router had not failed over as of sending it.
  void NoteRouterTraffic(uint64_t now_ms);

  /// Periodic lease check (TmanServerOptions::cluster_tick): self-holds
  /// when an admitted member has seen no router traffic within
  /// router_lease_ms.
  void TickRouterLease(uint64_t now_ms);

  // --- pump mode ----------------------------------------------------------

  void AddConnection(std::unique_ptr<PollableTransport> transport);

  /// Pumps every connection: drains outboxes, decodes and handles
  /// inbound frames, reaps dead connections. Returns true on progress.
  /// `now_ms` (logical clock, monotonic per caller) feeds the router-
  /// liveness lease; pass 0 to skip lease accounting for this step.
  bool Pump(uint64_t now_ms = 0);

  size_t active_connections() const { return conns_.size(); }

  ClusterNodeStats stats() const;

 private:
  struct NodeConn {
    std::unique_ptr<FrameConn> conn;
    std::string session;
    bool hello_done = false;
    bool is_router = false;  // sent us a partition map
    uint64_t last_applied = 0;
  };

  Status HandleFrame(NodeConn* conn, const Frame& frame);
  void HandleUpdateBatch(NodeConn* conn, const UpdateBatchFrame& batch);

  /// Pushes the current hold state (hold_ || lease_hold_) into the
  /// engine: the TriggerManager's task queue pauses while held, so the
  /// hold binds every driver. Call with mutex_ held after changing
  /// either flag.
  void ApplyHoldLocked();

  static std::string EncodeEpoch(uint64_t epoch);
  static uint64_t DecodeEpoch(const std::string& blob);

  TriggerManager* tman_;
  ClusterNodeOptions options_;

  mutable std::mutex mutex_;  // map_, epoch_, holds, lease, stats_
  PartitionMap map_;
  uint64_t durable_epoch_ = 0;
  bool hold_ = false;        // fences pending (recovery or channel loss)
  bool lease_hold_ = false;  // router-liveness lease expired
  uint64_t last_router_ms_ = 0;
  ClusterNodeStats stats_;

  std::vector<NodeConn> conns_;
};

}  // namespace tman

#endif  // TRIGGERMAN_CLUSTER_NODE_H_
