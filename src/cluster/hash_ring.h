#ifndef TRIGGERMAN_CLUSTER_HASH_RING_H_
#define TRIGGERMAN_CLUSTER_HASH_RING_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "types/update_descriptor.h"

namespace tman {

/// Configuration shared by the cluster router and every member node. The
/// partition function must be computed identically on both sides — the
/// router to pick a destination, the node to verify ownership — so the
/// whole struct travels with the deployment, not per-process.
struct ClusterConfig {
  /// Fixed partition count. Partitions, not nodes, are the unit of
  /// placement: the ring maps each of the `num_partitions` partition ids
  /// to a node, so adding or removing a node moves whole partitions
  /// instead of rehashing every key.
  uint32_t num_partitions = 32;

  /// Virtual nodes per member on the consistent-hash ring. More vnodes
  /// smooth the partition spread across heterogeneous member counts.
  uint32_t virtual_nodes = 64;

  /// Hot-source equivalence-class routing: for data sources listed here,
  /// the partition key mixes in the value of this tuple column (the
  /// equivalence-class key of the source's selection predicates), so one
  /// hot source's token stream spreads across partitions — and therefore
  /// nodes — instead of pinning a single owner. Sources not listed
  /// partition by source id alone, which preserves per-source ordering.
  std::map<DataSourceId, uint32_t> ec_key_columns;
};

/// Partition of one token under `config`. Deterministic across processes
/// and platforms (FNV over the serialized key).
uint32_t TokenPartition(const UpdateDescriptor& token,
                        const ClusterConfig& config);

/// The routing table the router computes and installs on nodes: a
/// monotonically increasing epoch plus one owner per partition. A node
/// rejects batches for partitions it does not own at its installed epoch;
/// the epoch is persisted in the node's WAL so a rejoined node knows how
/// stale its map is.
struct PartitionMap {
  uint64_t epoch = 0;
  std::vector<std::string> owners;  // partition id -> node name

  bool Owns(const std::string& node, uint32_t partition) const {
    return partition < owners.size() && owners[partition] == node;
  }
};

/// Consistent-hash ring with virtual nodes. Each member contributes
/// `virtual_nodes` points; a key is owned by the first point at or after
/// its hash (clockwise). Removing a member only reassigns the partitions
/// that hashed to its points.
class HashRing {
 public:
  explicit HashRing(uint32_t virtual_nodes = 64);

  void AddNode(const std::string& name);
  void RemoveNode(const std::string& name);
  bool HasNode(const std::string& name) const;
  bool empty() const { return ring_.empty(); }
  size_t num_nodes() const { return members_.size(); }
  std::vector<std::string> nodes() const;

  /// Owner of hash point `key`; empty string on an empty ring.
  std::string OwnerOf(uint64_t key) const;

 private:
  uint32_t virtual_nodes_;
  std::map<uint64_t, std::string> ring_;  // vnode point -> member
  std::set<std::string> members_;
};

/// Assigns every partition id an owner by hashing the partition id onto
/// the ring. Returns a map with the given epoch; owners are empty strings
/// when the ring is empty.
PartitionMap BuildPartitionMap(const HashRing& ring, uint64_t epoch,
                               uint32_t num_partitions);

}  // namespace tman

#endif  // TRIGGERMAN_CLUSTER_HASH_RING_H_
