#ifndef TRIGGERMAN_CLUSTER_ROUTER_H_
#define TRIGGERMAN_CLUSTER_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/frame_conn.h"
#include "cluster/hash_ring.h"
#include "cluster/membership.h"
#include "ipc/transport.h"
#include "ipc/wire_format.h"
#include "types/update_descriptor.h"
#include "util/fault_injector.h"

namespace tman {

/// The router state that must survive a router restart for the cluster's
/// exactly-once guarantees to hold:
///   * `epoch` — the highest partition-map epoch this router installed.
///     Nodes persist the epoch they acked and refuse older maps, so a
///     restarted router that forgot its epoch could never readmit them
///     (it would push epoch 1 forever). Refused maps also carry the
///     node's durable epoch and the router adopts it (see
///     ClusterRouter), so persistence is an optimization for that path —
///     but it is load-bearing for fences:
///   * `fences` — per channel session, the highest backend sequence the
///     router saw acked at that node's last death. Tokens above the
///     fence were re-routed to new owners; if the fence is lost across a
///     router restart, a rejoining node replays them from its WAL and
///     they fire twice.
struct RouterDurableState {
  uint64_t epoch = 0;
  std::map<std::string, uint64_t> fences;

  void Encode(std::string* out) const;
  static Result<RouterDurableState> Decode(std::string_view blob);
};

struct ClusterRouterOptions {
  std::string name = "router";

  /// Partition function parameters; must match the member nodes'.
  ClusterConfig config;

  /// Failure detection knobs (heartbeat cadence, miss threshold,
  /// reconnect-probe backoff).
  MembershipOptions membership;

  /// Frame I/O (payload cap + optional ipc.* fault injector).
  FrameIoOptions io;

  /// Optional injector for cluster.* fault sites (cluster.route,
  /// cluster.connect, cluster.heartbeat, cluster.map.send).
  FaultInjector* faults = nullptr;

  /// Max tokens per backend batch.
  uint32_t batch_max_updates = 256;

  /// Send window granted to each front-end client session at hello.
  uint32_t client_initial_credits = 4096;

  /// How many times a token whose batch drew a non-retryable node error
  /// (anything but the partition-moved Unavailable) is re-routed before
  /// its client sequence is failed with that error. Unavailable bounces
  /// are not counted — they converge by map installs.
  uint32_t max_token_retries = 3;

  /// State recovered from the last incarnation (see RouterDurableState);
  /// default-empty for a fresh router.
  RouterDurableState initial_state;

  /// Called (with the router mutex held, so keep it cheap/local) every
  /// time the durable state changes: after a fence is recorded — before
  /// the fenced node's tokens are re-routed — and after every epoch
  /// bump. The callback persists the blob; on restart the caller feeds
  /// it back through `initial_state`.
  std::function<void(const RouterDurableState&)> persist_state;
};

struct ClusterRouterStats {
  uint64_t tokens_routed = 0;      // tokens accepted for routing
  uint64_t tokens_acked = 0;       // tokens acked by their owner node
  uint64_t batches_sent = 0;       // backend batches written
  uint64_t misrouted_retries = 0;  // whole-batch partition-moved bounces
  uint64_t repartitions = 0;       // partition map rebuilds (epoch bumps)
  uint64_t failovers = 0;          // node deaths that triggered reassignment
  uint64_t rejoins = 0;            // previously-dead nodes readmitted
  uint64_t heartbeats_sent = 0;
  uint64_t client_batches = 0;       // front-end update batches received
  uint64_t dedup_client_tokens = 0;  // client resends dropped by session seq
  uint64_t epoch_adoptions = 0;      // refused maps that raised our epoch
  uint64_t tokens_failed = 0;        // retry budget exhausted; client told
};

/// The cluster front end: speaks the TriggerMan framed wire protocol to
/// clients on one side and to member nodes on the other, partitioning the
/// token stream across nodes with a consistent-hash ring (virtual nodes,
/// fixed partition count; hot sources additionally spread by
/// equivalence-class key — see ClusterConfig).
///
/// Reliability model, end to end exactly-once:
///   * every client token is retained (channel in-flight list) until the
///     owner node acks the backend sequence that carried it; only then is
///     the client's own session sequence acked;
///   * a node death (hard channel failure, or heartbeat miss threshold)
///     triggers failover: the ring drops the node, the epoch bumps, the
///     dead node's partitions reassign, and every unacked in-flight token
///     re-routes to its new owner;
///   * the router records a fence — the highest backend sequence the dead
///     node acked on its channel — and ships it with every subsequent
///     partition map. A rejoining node applies the fence to tokens it
///     recovers from its WAL: anything above the fence was re-routed while
///     it was down and must not fire twice;
///   * a batch that lands on a node which no longer owns its partition is
///     rejected whole (retryable Unavailable, no sequence advance) and
///     re-routed — the sequence gap is harmless because node-side dedup is
///     high-water based.
///
/// Single-threaded pump core: PumpOnce(now_ms) advances everything one
/// bounded step with a caller-supplied logical clock, which is what the
/// deterministic cluster tests drive (same seed, same failover schedule).
/// StartServing() wraps the same core in a pump thread + accept thread
/// for the real-socket deployment.
class ClusterRouter {
 public:
  /// Dials one member node; called on (re)connect probes. Returning an
  /// error leaves the node dead and backs off the next probe.
  using NodeConnector =
      std::function<Result<std::unique_ptr<PollableTransport>>()>;

  /// Blocking accept used by the threaded shell's accept loop. Must
  /// return an error when the listener is closed (shutdown path).
  using AcceptFn = std::function<Result<std::unique_ptr<PollableTransport>>()>;

  explicit ClusterRouter(ClusterRouterOptions options = {});
  ~ClusterRouter();

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  /// Registers a member node. Safe only before serving starts (the
  /// deterministic tests call it between pumps while single-threaded).
  void AddNode(const std::string& name, NodeConnector connector);

  /// Hands the router an accepted front-end client connection.
  void AddClientConn(std::unique_ptr<PollableTransport> transport);

  /// One bounded step of everything: membership tick (heartbeats, death
  /// verdicts, reconnect probes), backend channel I/O + acks + failover,
  /// partition-map pushes, batch flushing, client I/O. Returns true on
  /// progress. `now_ms` is a logical clock — monotonic per caller.
  bool PumpOnce(uint64_t now_ms);

  // --- programmatic ingest (tests, bench; bypasses the wire front end) ---

  /// Appends one token to `session`'s stream; returns the session
  /// sequence assigned. Ack is observable via AckedSeq().
  uint64_t Submit(const std::string& session, const UpdateDescriptor& token);

  /// Highest contiguously-acked sequence for a client session.
  uint64_t AckedSeq(const std::string& session) const;

  /// First recorded-but-unreported token failure for a client session
  /// (StatusCode; 0 = none). Wire clients get it on their next ack push;
  /// programmatic submitters (tests, bench) poll it here.
  uint8_t SessionErrorCode(const std::string& session) const;

  /// True when no token is buffered, in flight, or awaiting re-route.
  bool Idle() const;

  /// Idle, and every alive node's channel is connected with the current
  /// partition map acknowledged.
  bool Converged() const;

  PartitionMap partition_map() const;
  ClusterRouterStats stats() const;
  std::map<std::string, PeerHealth> peers() const;

  /// Human-readable cluster state: ring ownership, per-node health and
  /// channel depth, repartition/failover counters. Served to clients that
  /// issue the `cluster` console command.
  std::string StatsString() const;

  // --- threaded shell (real sockets) -------------------------------------

  /// Starts a pump thread (wall-clock time base) and, if `accept` is
  /// given, an accept thread feeding AddClientConn.
  void StartServing(AcceptFn accept);
  void StopServing();

 private:
  enum class ChannelState : uint8_t {
    kDown,        // no connection; probed on the membership schedule
    kConnecting,  // transport up, hello sent, awaiting hello-reply
    kFencing,     // hello done on a (re)joining node; map + fences sent,
                  // awaiting the ack that completes admission to the ring
    kUp,          // full member; batches flow when the map is synced
  };

  /// One client token riding a backend channel.
  struct RoutedToken {
    UpdateDescriptor token;
    std::string client_session;
    uint64_t client_seq = 0;
    uint32_t attempts = 0;  // non-retryable error bounces (see
                            // max_token_retries); Unavailable not counted
  };

  /// A batch written to a node and not yet acked. Backend sequences are
  /// assigned at send time (first_seq..first_seq+n-1) so channel batches
  /// stay contiguous no matter how tokens were re-routed beforehand.
  struct ChannelBatch {
    uint64_t first_seq = 0;
    std::vector<RoutedToken> tokens;
  };

  struct NodeChannel {
    NodeConnector connector;
    std::unique_ptr<FrameConn> conn;
    ChannelState state = ChannelState::kDown;
    bool map_synced = false;    // node acked the current epoch
    bool map_inflight = false;  // map sent, ack pending
    uint64_t next_seq = 1;      // next backend sequence to assign
    uint64_t acked_seq = 0;     // highest backend sequence acked
    uint32_t credits = 0;
    std::deque<ChannelBatch> inflight;
    std::deque<RoutedToken> pending;  // routed here, not yet sent
  };

  /// Client-session ack bookkeeping: acks to the client are cumulative
  /// over the contiguous prefix, but backend acks arrive out of order
  /// across nodes, so completions park in `done` until the prefix closes.
  struct ClientSession {
    uint64_t high_submitted = 0;
    uint64_t acked = 0;
    std::set<uint64_t> done;  // completed seqs above `acked`
    // First unreported token failure (retry budget exhausted): attached
    // to the next cumulative ack pushed to the session's client, then
    // cleared. The failed sequence still advances the ack prefix —
    // "acked" means resolved, the status says how.
    uint8_t error_code = 0;
    std::string error;
  };

  struct ClientConn {
    uint64_t id = 0;
    std::unique_ptr<FrameConn> conn;
    std::string session;
    bool hello_done = false;
    uint64_t acked_sent = 0;  // last ack_seq pushed to this client
  };

  /// A console command fanned out to every alive node; the reply to the
  /// client aggregates per-node results (or the first error).
  struct PendingCommand {
    uint64_t client_conn_id = 0;
    uint64_t client_request_id = 0;
    std::set<std::string> waiting;
    uint8_t error_code = 0;
    std::string error;
    std::string combined;
  };

  // Core steps (mutex held).
  void PumpMembership(uint64_t now_ms);
  bool PumpChannels(uint64_t now_ms);
  bool PumpClients();
  void FlushChannelBatches(NodeChannel* ch);
  void TryConnect(const std::string& name, NodeChannel* ch, uint64_t now_ms);
  void ChannelDown(const std::string& name, NodeChannel* ch, uint64_t now_ms);
  void Failover(const std::string& name, NodeChannel* ch, uint64_t now_ms);
  void CompleteJoin(const std::string& name, NodeChannel* ch, uint64_t now_ms);
  void InstallNewMap();
  void SendMap(const std::string& name, NodeChannel* ch);
  void HandleChannelFrame(const std::string& name, NodeChannel* ch,
                          const Frame& frame, uint64_t now_ms);
  void HandleChannelAck(const std::string& name, NodeChannel* ch,
                        const UpdateAckFrame& ack);
  void HandleClientFrame(ClientConn* client, const Frame& frame);
  void HandleCommandReply(const std::string& node,
                          const CommandReplyFrame& reply);
  void FinishCommand(uint64_t request_id);
  void Route(RoutedToken token);
  void MarkClientAcked(const std::string& session, uint64_t seq);
  void MarkClientFailed(const std::string& session, uint64_t seq,
                        uint8_t status_code, const std::string& message);
  void PersistStateLocked();
  uint64_t SubmitLocked(const std::string& session,
                        const UpdateDescriptor& token);
  std::string StatsStringLocked() const;
  bool IdleLocked() const;

  /// Backend session name for one node's channel: unique per node so a
  /// fence recorded for one dead node can never touch another node's
  /// pending tokens.
  std::string ChannelSession(const std::string& node) const {
    return options_.name + "->" + node;
  }

  ClusterRouterOptions options_;

  mutable std::mutex mutex_;
  ClusterMembership membership_;
  HashRing ring_;
  PartitionMap map_;
  uint64_t epoch_ = 0;
  std::map<std::string, NodeChannel> channels_;
  /// Sticky rejoin fences: channel session -> highest backend seq acked
  /// at that node's last death. Shipped with every map install.
  std::map<std::string, uint64_t> fences_;
  std::deque<RoutedToken> unrouted_;  // no owner yet; retried each pump

  std::map<std::string, ClientSession> sessions_;
  std::map<uint64_t, ClientConn> clients_;
  std::map<std::string, uint64_t> session_conn_;  // session -> client conn id
  uint64_t next_client_id_ = 1;

  std::map<uint64_t, PendingCommand> commands_;
  uint64_t next_request_id_ = 1;
  uint64_t next_nonce_ = 1;

  ClusterRouterStats stats_;

  // Threaded shell.
  std::atomic<bool> running_{false};
  std::thread pump_thread_;
  std::thread accept_thread_;
};

}  // namespace tman

#endif  // TRIGGERMAN_CLUSTER_ROUTER_H_
