#ifndef TRIGGERMAN_CLUSTER_FRAME_CONN_H_
#define TRIGGERMAN_CLUSTER_FRAME_CONN_H_

#include <deque>
#include <memory>
#include <string>

#include "ipc/transport.h"
#include "ipc/wire_format.h"

namespace tman {

/// A framed connection over a PollableTransport, driven entirely by
/// non-blocking Pump() calls: outbound frames accumulate in an outbox and
/// drain as the peer's buffer accepts bytes; inbound bytes accumulate and
/// decode into whole frames as they arrive. This is the I/O building
/// block of the cluster subsystem's single-threaded pump loops — under
/// the deterministic scheduler one Pump() is one bounded actor step, so
/// no schedule can block on transport I/O.
///
/// Not thread-safe: one owner pumps; the threaded shells serialize access
/// with their own mutex.
class FrameConn {
 public:
  explicit FrameConn(std::unique_ptr<PollableTransport> transport,
                     FrameIoOptions options = {});

  FrameConn(const FrameConn&) = delete;
  FrameConn& operator=(const FrameConn&) = delete;

  /// Queues one frame in the outbox (never blocks).
  void Send(FrameType type, std::string_view payload);

  template <typename Payload>
  void SendPayload(FrameType type, const Payload& payload_struct) {
    std::string payload;
    payload_struct.Encode(&payload);
    Send(type, payload);
  }

  /// Pushes outbox bytes and decodes available inbound frames. Returns
  /// true if any bytes moved or any frame became available. After a
  /// transport error or corrupt stream, failed() is true and the
  /// connection is closed.
  bool Pump();

  /// Pops the next decoded frame; false when none is pending.
  bool NextFrame(Frame* out);

  /// True when the connection is down (peer closed, transport error, or
  /// protocol corruption). Decoded frames may still be pending.
  bool failed() const { return failed_; }
  const Status& status() const { return status_; }

  /// Bytes waiting in the outbox (backpressure signal).
  size_t outbox_bytes() const { return outbox_.size() - outbox_pos_; }

  void Close();

  std::string peer() const { return transport_->peer(); }

 private:
  void Fail(Status status);
  void DecodeInbox();

  std::unique_ptr<PollableTransport> transport_;
  FrameIoOptions options_;
  std::string outbox_;
  size_t outbox_pos_ = 0;
  std::string inbox_;
  size_t inbox_pos_ = 0;
  std::deque<Frame> frames_;
  bool failed_ = false;
  bool saw_eof_ = false;
  Status status_;
};

}  // namespace tman

#endif  // TRIGGERMAN_CLUSTER_FRAME_CONN_H_
