#ifndef TRIGGERMAN_CLUSTER_MEMBERSHIP_H_
#define TRIGGERMAN_CLUSTER_MEMBERSHIP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tman {

struct MembershipOptions {
  /// Heartbeat cadence for alive peers.
  uint64_t heartbeat_interval_ms = 100;

  /// Consecutive unanswered heartbeats before a peer is declared dead
  /// and its partitions fail over.
  uint32_t miss_threshold = 3;

  /// Reconnect probes to a dead peer back off by this factor per attempt,
  /// up to the cap — so a down node is not hammered, and simultaneous
  /// failovers do not synchronize probe storms.
  double probe_backoff = 2.0;
  uint64_t max_probe_interval_ms = 3200;
};

/// Health of one peer as seen by the monitor.
struct PeerHealth {
  bool alive = true;
  uint32_t misses = 0;  // consecutive unanswered heartbeats
  bool ping_outstanding = false;
  uint64_t outstanding_nonce = 0;
  uint64_t next_probe_ms = 0;      // next heartbeat (alive) / reconnect probe
  uint64_t probe_interval_ms = 0;  // current backed-off probe interval
  uint64_t pings_sent = 0;
  uint64_t pongs_received = 0;
  uint64_t total_misses = 0;
  uint64_t deaths = 0;
};

/// What the owner of the membership machine should do this tick.
struct MembershipActions {
  std::vector<std::string> ping;   // send a heartbeat to these alive peers
  std::vector<std::string> probe;  // attempt reconnect of these dead peers
  std::vector<std::string> died;   // peers that just crossed miss_threshold
};

/// Peer health monitoring as a pure, clock-free state machine: the owner
/// (ClusterRouter) feeds it a logical `now_ms` and transport events, and
/// acts on the returned actions. No threads, no wall clock — under the
/// deterministic scheduler the same seed yields the same failure
/// detection schedule; the threaded shell feeds real time instead.
class ClusterMembership {
 public:
  explicit ClusterMembership(MembershipOptions options = {});

  void AddPeer(const std::string& name, uint64_t now_ms);

  /// Advances the machine to `now_ms`: due alive peers with an unanswered
  /// ping accrue a miss (and die at the threshold); due alive peers get a
  /// heartbeat; due dead peers get a backed-off reconnect probe.
  MembershipActions Tick(uint64_t now_ms);

  /// A heartbeat was actually written for `name` with this nonce.
  void OnPingSent(const std::string& name, uint64_t nonce);

  /// Any pong clears the miss streak; a stale nonce is ignored.
  void OnPong(const std::string& name, uint64_t nonce);

  /// Hard transport failure: the peer is dead immediately (no need to
  /// wait out the miss threshold when the connection is positively gone).
  /// Returns true when this transitioned the peer from alive to dead.
  bool OnChannelDown(const std::string& name, uint64_t now_ms);

  /// The peer completed a rejoin; resumes normal heartbeating.
  void MarkAlive(const std::string& name, uint64_t now_ms);

  bool IsAlive(const std::string& name) const;
  std::vector<std::string> AlivePeers() const;
  const std::map<std::string, PeerHealth>& peers() const { return peers_; }

  uint64_t total_heartbeat_misses() const;

 private:
  void MarkDeadLocked(PeerHealth* peer, uint64_t now_ms);

  MembershipOptions options_;
  std::map<std::string, PeerHealth> peers_;
};

}  // namespace tman

#endif  // TRIGGERMAN_CLUSTER_MEMBERSHIP_H_
