#include "cluster/node.h"

#include <algorithm>

#include "util/codec.h"
#include "util/logging.h"

namespace tman {

ClusterNode::ClusterNode(TriggerManager* tman, ClusterNodeOptions options)
    : tman_(tman), options_(std::move(options)) {
  durable_epoch_ = DecodeEpoch(tman_->RecoveredMeta());
  // A node that crashed as a cluster member and recovered pending tokens
  // must wait for the router's fences before processing them: any of them
  // may have been re-routed to another owner while this node was down.
  // (TriggerManager::Open() already paused the engine for this case; the
  // ApplyHoldLocked here keeps the node's view and the queue gate in
  // lockstep either way.)
  std::lock_guard<std::mutex> lock(mutex_);
  hold_ = durable_epoch_ > 0 && tman_->WalPendingTokens() > 0;
  ApplyHoldLocked();
}

uint64_t ClusterNode::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.epoch;
}

bool ClusterNode::processing_held() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hold_ || lease_hold_;
}

void ClusterNode::ApplyHoldLocked() {
  if (hold_ || lease_hold_) {
    tman_->PauseProcessing();
  } else {
    tman_->ResumeProcessing();
  }
}

void ClusterNode::OnRouterChannelLost() {
  // Losing the router's channel means it may be declaring us dead and
  // re-routing our staged-but-unfired tokens right now (false-death
  // window). Stop firing until it readmits us: the next map install
  // carries the fences that tell us which staged tokens were re-routed
  // while we were presumed dead. The router always pushes a map on
  // reconnect (kFencing state), so the hold is released on rejoin.
  std::lock_guard<std::mutex> lock(mutex_);
  if (map_.epoch > 0 && !hold_) {
    hold_ = true;
    ApplyHoldLocked();
  }
}

void ClusterNode::NoteRouterTraffic(uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  last_router_ms_ = std::max(last_router_ms_, now_ms);
  // Traffic proves the router had not failed us over as of sending it
  // (a failover resets the channel first), so a lease self-hold can
  // lift; a fence-pending hold_ lifts only with the map that carries
  // the fences.
  if (lease_hold_) {
    lease_hold_ = false;
    ApplyHoldLocked();
  }
}

void ClusterNode::TickRouterLease(uint64_t now_ms) {
  if (options_.router_lease_ms == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (map_.epoch == 0 || lease_hold_) return;  // not an admitted member
  if (now_ms < last_router_ms_ + options_.router_lease_ms) return;
  // No router traffic for a whole verdict window: over a mute partition
  // we would never see the channel close, but the router may already be
  // re-routing our staged tokens. Self-hold until traffic resumes or a
  // fresh map readmits us.
  lease_hold_ = true;
  ++stats_.lease_holds;
  ApplyHoldLocked();
}

Status ClusterNode::AdmitToken(const UpdateDescriptor& token) {
  uint32_t partition = TokenPartition(token, options_.config);
  std::lock_guard<std::mutex> lock(mutex_);
  if (map_.Owns(options_.name, partition)) return Status::OK();
  return Status::Unavailable("partition " + std::to_string(partition) +
                             " not owned by " + options_.name + " at epoch " +
                             std::to_string(map_.epoch));
}

PartitionMapAckFrame ClusterNode::HandlePartitionMap(
    const PartitionMapFrame& frame) {
  PartitionMapAckFrame ack;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ack.prior_epoch = durable_epoch_;
    if (frame.epoch < durable_epoch_) {
      // A map older than what this node durably installed can only come
      // from a router behind our history; refusing it keeps the fence
      // guarantees of the newer epoch intact.
      ack.epoch = map_.epoch;
      ack.status_code = static_cast<uint8_t>(StatusCode::kInvalidArgument);
      ack.message = "stale partition map epoch " +
                    std::to_string(frame.epoch) + " < durable " +
                    std::to_string(durable_epoch_);
      return ack;
    }
  }

  // Fence recovered tokens the router already re-routed elsewhere. Must
  // happen before the map is visible (and before processing resumes).
  std::map<std::string, uint64_t> fences(frame.fences.begin(),
                                         frame.fences.end());
  uint64_t fenced =
      fences.empty() ? 0 : tman_->FenceWalSessions(fences);

  // Persist the epoch before acking: once the router hears the ack it
  // will route on the new map, and a crash right after must not come
  // back believing an older epoch.
  if (tman_->wal_enabled()) {
    Status persisted = tman_->SetDurableMeta(EncodeEpoch(frame.epoch));
    if (!persisted.ok()) {
      ack.epoch = epoch();
      ack.status_code = static_cast<uint8_t>(persisted.code());
      ack.message = "epoch persist failed: " + persisted.message();
      return ack;
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  map_.epoch = frame.epoch;
  map_.owners = frame.owners;
  durable_epoch_ = frame.epoch;
  // The map carries the authoritative fences: both the fence-pending
  // hold and a lease self-hold can lift, and processing resumes.
  hold_ = false;
  lease_hold_ = false;
  ApplyHoldLocked();
  ++stats_.maps_installed;
  stats_.tokens_fenced += fenced;
  ack.epoch = frame.epoch;
  ack.fenced_tokens = fenced;
  return ack;
}

void ClusterNode::AddConnection(std::unique_ptr<PollableTransport> transport) {
  NodeConn conn;
  conn.conn = std::make_unique<FrameConn>(std::move(transport), options_.io);
  conns_.push_back(std::move(conn));
}

bool ClusterNode::Pump(uint64_t now_ms) {
  bool progress = false;
  for (auto& conn : conns_) {
    if (conn.conn->Pump()) progress = true;
    Frame frame;
    while (conn.conn->NextFrame(&frame)) {
      progress = true;
      Status handled = HandleFrame(&conn, frame);
      if (conn.is_router && now_ms > 0) NoteRouterTraffic(now_ms);
      if (!handled.ok()) {
        conn.conn->Close();
        break;
      }
    }
  }
  size_t before = conns_.size();
  bool router_lost = false;
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [&router_lost](const NodeConn& c) {
                                if (!c.conn->failed()) return false;
                                if (c.is_router) router_lost = true;
                                return true;
                              }),
               conns_.end());
  if (conns_.size() != before) progress = true;
  if (router_lost) OnRouterChannelLost();
  if (now_ms > 0) TickRouterLease(now_ms);
  return progress;
}

Status ClusterNode::HandleFrame(NodeConn* conn, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello: {
      TMAN_ASSIGN_OR_RETURN(HelloFrame hello,
                            HelloFrame::Decode(frame.payload));
      conn->session = hello.client_name;
      conn->hello_done = true;
      conn->last_applied = tman_->RecoveredSessionSeq(conn->session);
      HelloReplyFrame reply;
      reply.initial_credits = options_.initial_credits;
      reply.last_applied_seq = conn->last_applied;
      conn->conn->SendPayload(FrameType::kHelloReply, reply);
      return Status::OK();
    }
    case FrameType::kUpdateBatch: {
      if (!conn->hello_done) {
        return Status::InvalidArgument("update batch before hello");
      }
      TMAN_ASSIGN_OR_RETURN(UpdateBatchFrame batch,
                            UpdateBatchFrame::Decode(frame.payload));
      HandleUpdateBatch(conn, batch);
      return Status::OK();
    }
    case FrameType::kPartitionMap: {
      TMAN_ASSIGN_OR_RETURN(PartitionMapFrame map,
                            PartitionMapFrame::Decode(frame.payload));
      conn->is_router = true;  // only the router installs maps
      PartitionMapAckFrame ack = HandlePartitionMap(map);
      conn->conn->SendPayload(FrameType::kPartitionMapAck, ack);
      return Status::OK();
    }
    case FrameType::kCommand: {
      TMAN_ASSIGN_OR_RETURN(CommandFrame cmd,
                            CommandFrame::Decode(frame.payload));
      CommandReplyFrame reply;
      reply.request_id = cmd.request_id;
      auto result = tman_->ExecuteCommand(cmd.text);
      if (result.ok()) {
        reply.result = *result;
      } else {
        reply.status_code = static_cast<uint8_t>(result.status().code());
        reply.message = result.status().message();
      }
      conn->conn->SendPayload(FrameType::kCommandReply, reply);
      return Status::OK();
    }
    case FrameType::kPing: {
      TMAN_ASSIGN_OR_RETURN(PingFrame ping, PingFrame::Decode(frame.payload));
      conn->conn->SendPayload(FrameType::kPong, ping);
      return Status::OK();
    }
    case FrameType::kGoodbye:
      return Status::Aborted("peer said goodbye");
    default:
      return Status::InvalidArgument(
          std::string("unexpected frame: ") + std::string(FrameTypeName(frame.type)));
  }
}

void ClusterNode::HandleUpdateBatch(NodeConn* conn,
                                    const UpdateBatchFrame& batch) {
  UpdateAckFrame ack;
  ack.credits = static_cast<uint32_t>(batch.updates.size());

  // Dedup against the session high-water mark (resends after reconnect).
  std::vector<UpdateDescriptor> accepted;
  BatchStamp stamp;
  stamp.session = conn->session;
  uint64_t deduped = 0;
  for (size_t i = 0; i < batch.updates.size(); ++i) {
    uint64_t seq = batch.first_seq + i;
    if (seq <= conn->last_applied) {
      ++deduped;
      continue;
    }
    accepted.push_back(batch.updates[i]);
    stamp.seqs.push_back(seq);
  }
  uint64_t batch_high = batch.updates.empty()
                            ? conn->last_applied
                            : batch.first_seq + batch.updates.size() - 1;
  stamp.ack_seq = std::max(conn->last_applied, batch_high);

  if (accepted.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.tokens_deduped += deduped;
    ack.ack_seq = conn->last_applied;
    conn->conn->SendPayload(FrameType::kUpdateAck, ack);
    return;
  }

  // Ownership check — all-or-nothing: one misrouted token rejects the
  // whole batch with no session-sequence advance, so the router can
  // re-route it intact (sequence gaps are harmless; dedup is
  // high-water-based).
  for (const UpdateDescriptor& token : accepted) {
    Status admit = AdmitToken(token);
    if (!admit.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.batches_rejected;
      ack.ack_seq = conn->last_applied;
      ack.status_code = static_cast<uint8_t>(admit.code());
      ack.message = admit.message();
      conn->conn->SendPayload(FrameType::kUpdateAck, ack);
      return;
    }
  }

  Status submitted = tman_->SubmitUpdateBatch(accepted, nullptr, &stamp);
  if (!submitted.ok()) {
    // Durable contract: nothing staged, no sequence advance. The router
    // resends the identical batch.
    std::lock_guard<std::mutex> lock(mutex_);
    ack.ack_seq = conn->last_applied;
    ack.status_code = static_cast<uint8_t>(submitted.code());
    ack.message = submitted.message();
    conn->conn->SendPayload(FrameType::kUpdateAck, ack);
    return;
  }
  conn->last_applied = stamp.ack_seq;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.batches_accepted;
    stats_.tokens_applied += accepted.size();
    stats_.tokens_deduped += deduped;
  }
  ack.ack_seq = conn->last_applied;
  conn->conn->SendPayload(FrameType::kUpdateAck, ack);
}

std::string ClusterNode::EncodeEpoch(uint64_t epoch) {
  std::string blob;
  PutU64(&blob, epoch);
  return blob;
}

uint64_t ClusterNode::DecodeEpoch(const std::string& blob) {
  size_t pos = 0;
  uint64_t epoch = 0;
  if (!GetU64(blob, &pos, &epoch)) return 0;
  return epoch;
}

ClusterNodeStats ClusterNode::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace tman
