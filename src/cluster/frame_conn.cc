#include "cluster/frame_conn.h"

#include <algorithm>

namespace tman {

namespace {
constexpr size_t kReadChunk = 16 * 1024;
}  // namespace

FrameConn::FrameConn(std::unique_ptr<PollableTransport> transport,
                     FrameIoOptions options)
    : transport_(std::move(transport)), options_(options) {}

void FrameConn::Send(FrameType type, std::string_view payload) {
  if (failed_) return;
  EncodeFrame(type, payload, &outbox_);
}

bool FrameConn::Pump() {
  if (failed_) return false;
  bool progress = false;

  // Drain the outbox as far as the peer's buffer allows.
  while (outbox_pos_ < outbox_.size()) {
    auto wrote = transport_->TryWrite(
        std::string_view(outbox_).substr(outbox_pos_));
    if (!wrote.ok()) {
      Fail(wrote.status());
      return progress;
    }
    if (*wrote == 0) break;  // peer buffer full; retry next pump
    outbox_pos_ += *wrote;
    progress = true;
  }
  if (outbox_pos_ == outbox_.size() && outbox_pos_ > 0) {
    outbox_.clear();
    outbox_pos_ = 0;
  }

  // Pull whatever is readable and decode complete frames.
  char buf[kReadChunk];
  while (!saw_eof_ && transport_->ReadReady()) {
    auto n = transport_->ReadSome(buf, sizeof(buf));
    if (!n.ok()) {
      Fail(n.status());
      return progress;
    }
    if (*n == 0) {
      saw_eof_ = true;
      break;
    }
    inbox_.append(buf, *n);
    progress = true;
  }
  size_t frames_before = frames_.size();
  DecodeInbox();
  if (frames_.size() != frames_before) progress = true;
  if (saw_eof_ && !failed_) {
    // Clean end-of-stream: report it as a failure only once any fully
    // received frames have been decoded (they remain poppable).
    Fail(Status::Aborted("connection closed"));
  }
  return progress;
}

void FrameConn::DecodeInbox() {
  for (;;) {
    size_t available = inbox_.size() - inbox_pos_;
    if (available < kFrameHeaderSize) break;
    auto header = DecodeFrameHeader(
        std::string_view(inbox_).substr(inbox_pos_, kFrameHeaderSize),
        options_.max_payload);
    if (!header.ok()) {
      Fail(header.status());
      return;
    }
    if (available < kFrameHeaderSize + header->payload_len) break;
    std::string_view payload = std::string_view(inbox_).substr(
        inbox_pos_ + kFrameHeaderSize, header->payload_len);
    Status verified = VerifyFramePayload(*header, payload);
    if (!verified.ok()) {
      Fail(std::move(verified));
      return;
    }
    Frame frame;
    frame.type = header->type;
    frame.payload = std::string(payload);
    frames_.push_back(std::move(frame));
    inbox_pos_ += kFrameHeaderSize + header->payload_len;
  }
  // Compact once the consumed prefix dominates.
  if (inbox_pos_ > kReadChunk && inbox_pos_ * 2 > inbox_.size()) {
    inbox_.erase(0, inbox_pos_);
    inbox_pos_ = 0;
  }
}

bool FrameConn::NextFrame(Frame* out) {
  if (frames_.empty()) return false;
  *out = std::move(frames_.front());
  frames_.pop_front();
  return true;
}

void FrameConn::Fail(Status status) {
  if (failed_) return;
  failed_ = true;
  status_ = std::move(status);
  transport_->Close();
}

void FrameConn::Close() {
  Fail(Status::Aborted("closed by owner"));
}

}  // namespace tman
