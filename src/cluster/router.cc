#include "cluster/router.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "util/codec.h"
#include "util/logging.h"

namespace tman {

void RouterDurableState::Encode(std::string* out) const {
  PutU64(out, epoch);
  PutU32(out, static_cast<uint32_t>(fences.size()));
  for (const auto& [session, fence] : fences) {
    PutLengthPrefixed(out, session);
    PutU64(out, fence);
  }
}

Result<RouterDurableState> RouterDurableState::Decode(std::string_view blob) {
  RouterDurableState state;
  size_t pos = 0;
  uint32_t count = 0;
  if (!GetU64(blob, &pos, &state.epoch) || !GetU32(blob, &pos, &count)) {
    return Status::Corruption("router state: malformed blob");
  }
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view session;
    uint64_t fence = 0;
    if (!GetLengthPrefixed(blob, &pos, &session) ||
        !GetU64(blob, &pos, &fence)) {
      return Status::Corruption("router state: malformed fence entry");
    }
    state.fences[std::string(session)] = fence;
  }
  return state;
}

ClusterRouter::ClusterRouter(ClusterRouterOptions options)
    : options_(std::move(options)), membership_(options_.membership) {
  epoch_ = options_.initial_state.epoch;
  fences_ = options_.initial_state.fences;
  if (options_.faults != nullptr) {
    options_.faults->RegisterSite("cluster.route");
    options_.faults->RegisterSite("cluster.connect");
    options_.faults->RegisterSite("cluster.heartbeat");
    options_.faults->RegisterSite("cluster.map.send");
  }
}

ClusterRouter::~ClusterRouter() { StopServing(); }

void ClusterRouter::AddNode(const std::string& name, NodeConnector connector) {
  std::lock_guard<std::mutex> lock(mutex_);
  NodeChannel& ch = channels_[name];
  ch.connector = std::move(connector);
  membership_.AddPeer(name, 0);
}

void ClusterRouter::AddClientConn(std::unique_ptr<PollableTransport> transport) {
  std::lock_guard<std::mutex> lock(mutex_);
  ClientConn client;
  client.id = next_client_id_++;
  client.conn = std::make_unique<FrameConn>(std::move(transport), options_.io);
  clients_.emplace(client.id, std::move(client));
}

bool ClusterRouter::PumpOnce(uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  PumpMembership(now_ms);
  bool progress = PumpChannels(now_ms);
  if (PumpClients()) progress = true;
  return progress;
}

void ClusterRouter::PumpMembership(uint64_t now_ms) {
  MembershipActions actions = membership_.Tick(now_ms);
  for (const std::string& name : actions.died) {
    auto it = channels_.find(name);
    if (it != channels_.end()) Failover(name, &it->second, now_ms);
  }
  for (const std::string& name : actions.ping) {
    auto it = channels_.find(name);
    if (it == channels_.end()) continue;
    NodeChannel& ch = it->second;
    if (!ch.conn || ch.conn->failed()) continue;
    uint64_t nonce = next_nonce_++;
    if (options_.faults != nullptr &&
        !options_.faults->Check("cluster.heartbeat").ok()) {
      // Dropped heartbeat: account it as sent (so the miss counter runs)
      // without writing the frame — this is how the fault site exercises
      // the miss-threshold failover path.
      membership_.OnPingSent(name, nonce);
      continue;
    }
    PingFrame ping;
    ping.nonce = nonce;
    ch.conn->SendPayload(FrameType::kPing, ping);
    membership_.OnPingSent(name, nonce);
    ++stats_.heartbeats_sent;
  }
  for (const std::string& name : actions.probe) {
    auto it = channels_.find(name);
    if (it == channels_.end()) continue;
    if (it->second.state == ChannelState::kDown) {
      TryConnect(name, &it->second, now_ms);
    }
  }
}

void ClusterRouter::TryConnect(const std::string& name, NodeChannel* ch,
                               uint64_t now_ms) {
  if (!ch->connector) return;
  if (options_.faults != nullptr &&
      !options_.faults->Check("cluster.connect").ok()) {
    return;  // retried on the next probe
  }
  auto transport = ch->connector();
  if (!transport.ok()) {
    // An alive peer we cannot dial is a dead peer: fail over now rather
    // than waiting out the heartbeat misses on a connection that does
    // not exist.
    if (membership_.IsAlive(name)) ChannelDown(name, ch, now_ms);
    return;
  }
  ch->conn = std::make_unique<FrameConn>(std::move(*transport), options_.io);
  ch->state = ChannelState::kConnecting;
  HelloFrame hello;
  hello.client_name = ChannelSession(name);
  ch->conn->SendPayload(FrameType::kHello, hello);
}

bool ClusterRouter::PumpChannels(uint64_t now_ms) {
  bool progress = false;

  // Bootstrap / recovery: alive peers with no connection get dialed
  // immediately (dead peers are dialed on the membership probe schedule).
  for (auto& [name, ch] : channels_) {
    if (ch.state == ChannelState::kDown && membership_.IsAlive(name)) {
      TryConnect(name, &ch, now_ms);
    }
  }

  for (auto& [name, ch] : channels_) {
    if (!ch.conn) continue;
    if (ch.conn->Pump()) progress = true;
    Frame frame;
    while (ch.conn && ch.conn->NextFrame(&frame)) {
      progress = true;
      HandleChannelFrame(name, &ch, frame, now_ms);
    }
    if (ch.conn && ch.conn->failed()) {
      ChannelDown(name, &ch, now_ms);
      progress = true;
    }
  }

  // Push the current map to any channel that has not acked it.
  for (auto& [name, ch] : channels_) {
    if (!ch.conn || ch.conn->failed()) continue;
    if (ch.state != ChannelState::kFencing && ch.state != ChannelState::kUp)
      continue;
    if (!ch.map_synced && !ch.map_inflight) SendMap(name, &ch);
  }

  // Retry tokens that had no owner (empty ring, or a routing fault).
  if (!unrouted_.empty()) {
    std::deque<RoutedToken> retry;
    retry.swap(unrouted_);
    for (RoutedToken& token : retry) Route(std::move(token));
  }

  // Build and send batches, then give each channel one more pump so the
  // bytes move this step instead of next.
  for (auto& [name, ch] : channels_) {
    FlushChannelBatches(&ch);
    if (ch.conn && !ch.conn->failed() && ch.conn->outbox_bytes() > 0) {
      if (ch.conn->Pump()) progress = true;
    }
  }
  return progress;
}

void ClusterRouter::HandleChannelFrame(const std::string& name,
                                       NodeChannel* ch, const Frame& frame,
                                       uint64_t now_ms) {
  switch (frame.type) {
    case FrameType::kHelloReply: {
      auto reply = HelloReplyFrame::Decode(frame.payload);
      if (!reply.ok() || reply->status_code != 0) {
        ch->conn->Close();
        return;
      }
      ch->credits = reply->initial_credits;
      // The node's durable session high-water may exceed what we saw
      // acked (acks lost in the crash); those tokens were re-routed and
      // will be fenced, so just adopt the higher mark.
      ch->acked_seq = std::max(ch->acked_seq, reply->last_applied_seq);
      ch->next_seq = std::max(ch->next_seq, ch->acked_seq + 1);
      // Every (re)connect admits the node through the fencing step: it
      // must install the current map (and fences) before joining the ring.
      ch->state = ChannelState::kFencing;
      ch->map_synced = false;
      ch->map_inflight = false;
      return;
    }
    case FrameType::kPartitionMapAck: {
      auto ack = PartitionMapAckFrame::Decode(frame.payload);
      if (!ack.ok()) {
        ch->conn->Close();
        return;
      }
      ch->map_inflight = false;
      if (ack->status_code != 0) {
        TMAN_LOG(kWarn) << "cluster: " << name << " refused map epoch "
                       << epoch_ << ": " << ack->message;
        if (ack->prior_epoch > epoch_) {
          // The node durably installed a newer epoch than this router
          // remembers — a restarted router behind the cluster's history.
          // Adopt the node's epoch and rebuild: InstallNewMap bumps to
          // prior+1, marks every channel unsynced, and the resent map
          // now clears the node's staleness check. Closing the channel
          // here (the old behavior) just reconnected and refused again,
          // forever.
          ++stats_.epoch_adoptions;
          TMAN_LOG(kInfo) << "cluster: adopting epoch " << ack->prior_epoch
                         << " from " << name << " (ours was " << epoch_
                         << ")";
          epoch_ = ack->prior_epoch;
          InstallNewMap();
        }
        // Otherwise the refusal was of an older in-flight map (or a
        // transient node-side persist failure); the current map resends
        // next pump since map_synced and map_inflight are both false.
        return;
      }
      if (ack->epoch != epoch_) return;  // stale ack; current map resends
      ch->map_synced = true;
      if (ch->state == ChannelState::kFencing) CompleteJoin(name, ch, now_ms);
      return;
    }
    case FrameType::kUpdateAck: {
      auto ack = UpdateAckFrame::Decode(frame.payload);
      if (!ack.ok()) {
        ch->conn->Close();
        return;
      }
      HandleChannelAck(name, ch, *ack);
      return;
    }
    case FrameType::kPong: {
      auto pong = PingFrame::Decode(frame.payload);
      if (pong.ok()) membership_.OnPong(name, pong->nonce);
      return;
    }
    case FrameType::kCommandReply: {
      auto reply = CommandReplyFrame::Decode(frame.payload);
      if (reply.ok()) HandleCommandReply(name, *reply);
      return;
    }
    case FrameType::kCreditGrant: {
      auto grant = CreditGrantFrame::Decode(frame.payload);
      if (grant.ok()) ch->credits += grant->credits;
      return;
    }
    case FrameType::kGoodbye:
      ch->conn->Close();
      return;
    default:
      TMAN_LOG(kWarn) << "cluster: unexpected frame from " << name << ": "
                     << FrameTypeName(frame.type);
      return;
  }
}

void ClusterRouter::HandleChannelAck(const std::string& name, NodeChannel* ch,
                                     const UpdateAckFrame& ack) {
  ch->credits += ack.credits;
  if (ch->inflight.empty()) {
    // Unsolicited ack (e.g. pure high-water report); adopt the mark.
    ch->acked_seq = std::max(ch->acked_seq, ack.ack_seq);
    return;
  }
  ChannelBatch batch = std::move(ch->inflight.front());
  ch->inflight.pop_front();
  if (ack.status_code == 0) {
    ch->acked_seq = std::max(ch->acked_seq, ack.ack_seq);
    stats_.tokens_acked += batch.tokens.size();
    for (RoutedToken& token : batch.tokens) {
      MarkClientAcked(token.client_session, token.client_seq);
    }
    return;
  }
  if (ack.status_code == static_cast<uint8_t>(StatusCode::kUnavailable)) {
    // Partition moved under the batch: the node rejected it whole with no
    // sequence advance. Re-route; the burned sequence numbers are
    // harmless (node dedup is high-water based). Not counted against the
    // retry budget — these bounces converge as map installs settle.
    ++stats_.misrouted_retries;
    for (RoutedToken& token : batch.tokens) Route(std::move(token));
    return;
  }
  // A non-retryable node error (e.g. a WAL write failure): re-routing
  // unconditionally would spin a hot resend loop against the same sick
  // owner. Give each token a bounded number of attempts, then resolve
  // its client sequence with the node's error so the session does not
  // wedge behind it.
  TMAN_LOG(kWarn) << "cluster: " << name << " rejected batch: "
                 << ack.message;
  for (RoutedToken& token : batch.tokens) {
    if (++token.attempts <= options_.max_token_retries) {
      Route(std::move(token));
      continue;
    }
    ++stats_.tokens_failed;
    MarkClientFailed(token.client_session, token.client_seq, ack.status_code,
                     ack.message);
  }
}

void ClusterRouter::FlushChannelBatches(NodeChannel* ch) {
  if (ch->state != ChannelState::kUp || !ch->map_synced) return;
  if (!ch->conn || ch->conn->failed()) return;
  while (!ch->pending.empty() && ch->credits > 0) {
    size_t n = std::min<size_t>(
        {ch->pending.size(), ch->credits, options_.batch_max_updates});
    ChannelBatch batch;
    batch.first_seq = ch->next_seq;
    UpdateBatchFrame frame;
    frame.first_seq = ch->next_seq;
    for (size_t i = 0; i < n; ++i) {
      frame.updates.push_back(ch->pending.front().token);
      batch.tokens.push_back(std::move(ch->pending.front()));
      ch->pending.pop_front();
    }
    ch->next_seq += n;
    ch->credits -= static_cast<uint32_t>(n);
    ch->conn->SendPayload(FrameType::kUpdateBatch, frame);
    ch->inflight.push_back(std::move(batch));
    ++stats_.batches_sent;
  }
}

void ClusterRouter::ChannelDown(const std::string& name, NodeChannel* ch,
                                uint64_t now_ms) {
  if (membership_.OnChannelDown(name, now_ms)) {
    Failover(name, ch, now_ms);
    return;
  }
  // Already dead (a failed reconnect attempt): just reset the channel and
  // let the membership probe schedule drive the next attempt.
  ch->conn.reset();
  ch->state = ChannelState::kDown;
  ch->map_synced = false;
  ch->map_inflight = false;
  ch->credits = 0;
}

void ClusterRouter::Failover(const std::string& name, NodeChannel* ch,
                             uint64_t now_ms) {
  ++stats_.failovers;
  TMAN_LOG(kInfo) << "cluster: node " << name << " down; failing over";

  // Fence: everything above this backend sequence that the node may have
  // durably accepted (but not acked) is about to be re-routed, and must
  // not fire from the node's WAL when it rejoins. Persist before
  // re-routing a single orphan: once a copy is in flight to a new owner,
  // a router crash that forgot the fence would let the rejoining node
  // replay the originals.
  fences_[ChannelSession(name)] = ch->acked_seq;
  PersistStateLocked();

  std::vector<RoutedToken> orphans;
  for (ChannelBatch& batch : ch->inflight) {
    for (RoutedToken& token : batch.tokens) orphans.push_back(std::move(token));
  }
  for (RoutedToken& token : ch->pending) orphans.push_back(std::move(token));
  ch->inflight.clear();
  ch->pending.clear();
  ch->conn.reset();
  ch->state = ChannelState::kDown;
  ch->map_synced = false;
  ch->map_inflight = false;
  ch->credits = 0;

  if (ring_.HasNode(name)) {
    ring_.RemoveNode(name);
    InstallNewMap();
  }
  for (RoutedToken& token : orphans) Route(std::move(token));

  // Console commands waiting on the dead node will never hear back.
  std::vector<uint64_t> finished;
  for (auto& [rid, cmd] : commands_) {
    if (cmd.waiting.erase(name) == 0) continue;
    if (cmd.error_code == 0) {
      cmd.error_code = static_cast<uint8_t>(StatusCode::kUnavailable);
      cmd.error = "node " + name + " lost mid-command";
    }
    if (cmd.waiting.empty()) finished.push_back(rid);
  }
  for (uint64_t rid : finished) FinishCommand(rid);
  (void)now_ms;
}

void ClusterRouter::CompleteJoin(const std::string& name, NodeChannel* ch,
                                 uint64_t now_ms) {
  ch->state = ChannelState::kUp;
  auto peer = membership_.peers().find(name);
  if (peer != membership_.peers().end() && peer->second.deaths > 0) {
    ++stats_.rejoins;
    TMAN_LOG(kInfo) << "cluster: node " << name << " rejoined";
  }
  membership_.MarkAlive(name, now_ms);
  ring_.AddNode(name);
  InstallNewMap();
}

void ClusterRouter::InstallNewMap() {
  ++epoch_;
  map_ = BuildPartitionMap(ring_, epoch_, options_.config.num_partitions);
  ++stats_.repartitions;
  PersistStateLocked();
  // Tokens parked on a channel may now belong elsewhere; re-route them
  // all. (In-flight batches stay — a wrong destination bounces them back
  // with a retryable reject.)
  std::vector<RoutedToken> reroute;
  for (auto& [name, ch] : channels_) {
    ch.map_synced = false;
    ch.map_inflight = false;
    for (RoutedToken& token : ch.pending) reroute.push_back(std::move(token));
    ch.pending.clear();
  }
  for (RoutedToken& token : reroute) Route(std::move(token));
}

void ClusterRouter::SendMap(const std::string& name, NodeChannel* ch) {
  if (options_.faults != nullptr &&
      !options_.faults->Check("cluster.map.send").ok()) {
    return;  // retried next pump (map_inflight stays false)
  }
  PartitionMapFrame frame;
  frame.epoch = epoch_;
  frame.owners = map_.owners;
  frame.fences.assign(fences_.begin(), fences_.end());
  ch->conn->SendPayload(FrameType::kPartitionMap, frame);
  ch->map_inflight = true;
  (void)name;
}

void ClusterRouter::Route(RoutedToken token) {
  if (options_.faults != nullptr &&
      !options_.faults->Check("cluster.route").ok()) {
    unrouted_.push_back(std::move(token));
    return;
  }
  uint32_t partition = TokenPartition(token.token, options_.config);
  std::string owner;
  if (partition < map_.owners.size()) owner = map_.owners[partition];
  if (owner.empty()) {
    unrouted_.push_back(std::move(token));
    return;
  }
  auto it = channels_.find(owner);
  if (it == channels_.end()) {
    unrouted_.push_back(std::move(token));
    return;
  }
  it->second.pending.push_back(std::move(token));
}

void ClusterRouter::PersistStateLocked() {
  if (!options_.persist_state) return;
  RouterDurableState state;
  state.epoch = epoch_;
  state.fences = fences_;
  options_.persist_state(state);
}

void ClusterRouter::MarkClientFailed(const std::string& session, uint64_t seq,
                                     uint8_t status_code,
                                     const std::string& message) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  ClientSession& s = it->second;
  if (s.error_code == 0) {
    s.error_code = status_code;
    s.error = "seq " + std::to_string(seq) + ": " + message;
  }
  // Resolve the sequence so the cumulative ack prefix advances past the
  // failed token; the attached status tells the client it failed.
  MarkClientAcked(session, seq);
}

void ClusterRouter::MarkClientAcked(const std::string& session, uint64_t seq) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  ClientSession& s = it->second;
  if (seq <= s.acked) return;
  s.done.insert(seq);
  while (!s.done.empty() && *s.done.begin() == s.acked + 1) {
    ++s.acked;
    s.done.erase(s.done.begin());
  }
}

uint64_t ClusterRouter::SubmitLocked(const std::string& session,
                                     const UpdateDescriptor& token) {
  ClientSession& s = sessions_[session];
  uint64_t seq = ++s.high_submitted;
  ++stats_.tokens_routed;
  Route(RoutedToken{token, session, seq});
  return seq;
}

uint64_t ClusterRouter::Submit(const std::string& session,
                               const UpdateDescriptor& token) {
  std::lock_guard<std::mutex> lock(mutex_);
  return SubmitLocked(session, token);
}

uint64_t ClusterRouter::AckedSeq(const std::string& session) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(session);
  return it == sessions_.end() ? 0 : it->second.acked;
}

uint8_t ClusterRouter::SessionErrorCode(const std::string& session) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(session);
  return it == sessions_.end() ? 0 : it->second.error_code;
}

bool ClusterRouter::IdleLocked() const {
  if (!unrouted_.empty()) return false;
  for (const auto& [name, ch] : channels_) {
    if (!ch.pending.empty() || !ch.inflight.empty()) return false;
  }
  return true;
}

bool ClusterRouter::Idle() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return IdleLocked();
}

bool ClusterRouter::Converged() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!IdleLocked()) return false;
  for (const auto& [name, peer] : membership_.peers()) {
    if (!peer.alive) continue;
    auto it = channels_.find(name);
    if (it == channels_.end()) return false;
    if (it->second.state != ChannelState::kUp || !it->second.map_synced) {
      return false;
    }
  }
  return true;
}

PartitionMap ClusterRouter::partition_map() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_;
}

ClusterRouterStats ClusterRouter::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::map<std::string, PeerHealth> ClusterRouter::peers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return membership_.peers();
}

// --- client front end -----------------------------------------------------

bool ClusterRouter::PumpClients() {
  bool progress = false;
  std::vector<uint64_t> dead;
  for (auto& [id, client] : clients_) {
    if (client.conn->Pump()) progress = true;
    Frame frame;
    while (client.conn->NextFrame(&frame)) {
      progress = true;
      HandleClientFrame(&client, frame);
    }
    // Push cumulative acks as the contiguous prefix advances; a recorded
    // token failure rides the next push (and forces one) so the client
    // learns about it instead of seeing a silently-acked sequence.
    if (client.hello_done && !client.conn->failed()) {
      auto it = sessions_.find(client.session);
      if (it != sessions_.end() &&
          (it->second.acked > client.acked_sent ||
           it->second.error_code != 0)) {
        UpdateAckFrame ack;
        ack.ack_seq = it->second.acked;
        ack.status_code = it->second.error_code;
        ack.message = it->second.error;
        it->second.error_code = 0;
        it->second.error.clear();
        client.conn->SendPayload(FrameType::kUpdateAck, ack);
        client.acked_sent = it->second.acked;
      }
    }
    if (client.conn->outbox_bytes() > 0 && !client.conn->failed()) {
      if (client.conn->Pump()) progress = true;
    }
    if (client.conn->failed()) dead.push_back(id);
  }
  for (uint64_t id : dead) {
    auto it = clients_.find(id);
    if (it == clients_.end()) continue;
    auto sc = session_conn_.find(it->second.session);
    if (sc != session_conn_.end() && sc->second == id) {
      session_conn_.erase(sc);
    }
    clients_.erase(it);
    progress = true;
  }
  return progress;
}

void ClusterRouter::HandleClientFrame(ClientConn* client, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello: {
      auto hello = HelloFrame::Decode(frame.payload);
      if (!hello.ok()) {
        client->conn->Close();
        return;
      }
      client->session = hello->client_name;
      client->hello_done = true;
      ClientSession& s = sessions_[client->session];
      session_conn_[client->session] = client->id;
      HelloReplyFrame reply;
      reply.initial_credits = options_.client_initial_credits;
      reply.last_applied_seq = s.acked;
      client->acked_sent = s.acked;
      client->conn->SendPayload(FrameType::kHelloReply, reply);
      return;
    }
    case FrameType::kUpdateBatch: {
      if (!client->hello_done) {
        client->conn->Close();
        return;
      }
      auto batch = UpdateBatchFrame::Decode(frame.payload);
      if (!batch.ok()) {
        client->conn->Close();
        return;
      }
      ++stats_.client_batches;
      ClientSession& s = sessions_[client->session];
      for (size_t i = 0; i < batch->updates.size(); ++i) {
        uint64_t seq = batch->first_seq + i;
        if (seq <= s.high_submitted) {
          ++stats_.dedup_client_tokens;
          continue;
        }
        s.high_submitted = seq;
        ++stats_.tokens_routed;
        Route(RoutedToken{std::move(batch->updates[i]), client->session, seq});
      }
      // Replenish the client's send window immediately; the ack itself
      // follows once the owner nodes confirm.
      CreditGrantFrame grant;
      grant.credits = static_cast<uint32_t>(batch->updates.size());
      client->conn->SendPayload(FrameType::kCreditGrant, grant);
      return;
    }
    case FrameType::kCommand: {
      auto cmd = CommandFrame::Decode(frame.payload);
      if (!cmd.ok()) {
        client->conn->Close();
        return;
      }
      if (cmd->text == "cluster") {
        CommandReplyFrame reply;
        reply.request_id = cmd->request_id;
        reply.result = StatsStringLocked();
        client->conn->SendPayload(FrameType::kCommandReply, reply);
        return;
      }
      PendingCommand pending;
      pending.client_conn_id = client->id;
      pending.client_request_id = cmd->request_id;
      for (auto& [name, ch] : channels_) {
        if (ch.state == ChannelState::kUp && ch.conn && !ch.conn->failed()) {
          pending.waiting.insert(name);
        }
      }
      if (pending.waiting.empty()) {
        CommandReplyFrame reply;
        reply.request_id = cmd->request_id;
        reply.status_code = static_cast<uint8_t>(StatusCode::kUnavailable);
        reply.message = "no cluster members available";
        client->conn->SendPayload(FrameType::kCommandReply, reply);
        return;
      }
      uint64_t rid = next_request_id_++;
      CommandFrame fwd;
      fwd.request_id = rid;
      fwd.text = cmd->text;
      for (const std::string& name : pending.waiting) {
        channels_[name].conn->SendPayload(FrameType::kCommand, fwd);
      }
      commands_.emplace(rid, std::move(pending));
      return;
    }
    case FrameType::kEventRegister: {
      auto reg = EventRegisterFrame::Decode(frame.payload);
      CommandReplyFrame reply;
      reply.request_id = reg.ok() ? reg->request_id : 0;
      reply.status_code = static_cast<uint8_t>(StatusCode::kNotSupported);
      reply.message =
          "event subscriptions are per-node; connect to a member directly";
      client->conn->SendPayload(FrameType::kCommandReply, reply);
      return;
    }
    case FrameType::kPing: {
      auto ping = PingFrame::Decode(frame.payload);
      if (ping.ok()) client->conn->SendPayload(FrameType::kPong, *ping);
      return;
    }
    case FrameType::kGoodbye:
      client->conn->Close();
      return;
    default:
      client->conn->Close();
      return;
  }
}

void ClusterRouter::HandleCommandReply(const std::string& node,
                                       const CommandReplyFrame& reply) {
  auto it = commands_.find(reply.request_id);
  if (it == commands_.end()) return;
  PendingCommand& cmd = it->second;
  if (cmd.waiting.erase(node) == 0) return;
  if (reply.status_code != 0) {
    if (cmd.error_code == 0) {
      cmd.error_code = reply.status_code;
      cmd.error = node + ": " + reply.message;
    }
  } else if (!reply.result.empty()) {
    if (!cmd.combined.empty()) cmd.combined += "\n";
    cmd.combined += "[" + node + "] " + reply.result;
  }
  if (cmd.waiting.empty()) FinishCommand(reply.request_id);
}

void ClusterRouter::FinishCommand(uint64_t request_id) {
  auto it = commands_.find(request_id);
  if (it == commands_.end()) return;
  PendingCommand cmd = std::move(it->second);
  commands_.erase(it);
  auto client = clients_.find(cmd.client_conn_id);
  if (client == clients_.end() || client->second.conn->failed()) return;
  CommandReplyFrame reply;
  reply.request_id = cmd.client_request_id;
  reply.status_code = cmd.error_code;
  reply.message = cmd.error;
  reply.result = cmd.combined;
  client->second.conn->SendPayload(FrameType::kCommandReply, reply);
}

// --- stats ----------------------------------------------------------------

std::string ClusterRouter::StatsString() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return StatsStringLocked();
}

std::string ClusterRouter::StatsStringLocked() const {
  std::ostringstream out;
  out << "cluster: epoch=" << epoch_ << " partitions="
      << options_.config.num_partitions << " nodes=" << channels_.size()
      << " alive=" << membership_.AlivePeers().size() << "\n";
  for (const auto& [name, peer] : membership_.peers()) {
    auto it = channels_.find(name);
    uint32_t owned = 0;
    for (const std::string& owner : map_.owners) {
      if (owner == name) ++owned;
    }
    out << "  node " << name << ": " << (peer.alive ? "alive" : "dead")
        << " partitions=" << owned;
    if (it != channels_.end()) {
      const NodeChannel& ch = it->second;
      out << " acked=" << ch.acked_seq << " inflight=" << ch.inflight.size()
          << " pending=" << ch.pending.size()
          << " map_synced=" << (ch.map_synced ? 1 : 0);
    }
    out << " misses=" << peer.misses << " total_misses=" << peer.total_misses
        << " pings=" << peer.pings_sent << " pongs=" << peer.pongs_received
        << " deaths=" << peer.deaths << "\n";
  }
  out << "  routed=" << stats_.tokens_routed << " acked=" << stats_.tokens_acked
      << " batches=" << stats_.batches_sent
      << " misrouted_retries=" << stats_.misrouted_retries
      << " failed=" << stats_.tokens_failed << "\n";
  out << "  repartitions=" << stats_.repartitions
      << " failovers=" << stats_.failovers << " rejoins=" << stats_.rejoins
      << " epoch_adoptions=" << stats_.epoch_adoptions
      << " heartbeats=" << stats_.heartbeats_sent
      << " heartbeat_misses=" << membership_.total_heartbeat_misses();
  return out.str();
}

// --- threaded shell -------------------------------------------------------

void ClusterRouter::StartServing(AcceptFn accept) {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  pump_thread_ = std::thread([this] {
    auto start = std::chrono::steady_clock::now();
    while (running_.load(std::memory_order_relaxed)) {
      auto now = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
      bool progress = PumpOnce(static_cast<uint64_t>(now));
      if (!progress) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    }
  });
  if (accept) {
    accept_thread_ = std::thread([this, accept = std::move(accept)] {
      while (running_.load(std::memory_order_relaxed)) {
        auto transport = accept();
        if (!transport.ok()) return;  // listener closed
        AddClientConn(std::move(*transport));
      }
    });
  }
}

void ClusterRouter::StopServing() {
  if (!running_.exchange(false)) return;
  if (pump_thread_.joinable()) pump_thread_.join();
  // The accept thread exits when its listener is closed by the caller;
  // join whatever is left.
  if (accept_thread_.joinable()) accept_thread_.join();
}

}  // namespace tman
