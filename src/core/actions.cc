#include "core/actions.h"

#include <cctype>

#include "db/sql.h"
#include "expr/eval.h"
#include "util/string_util.h"

namespace tman {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Reads an identifier starting at `pos`; advances past it.
std::string ReadIdent(const std::string& s, size_t* pos) {
  size_t start = *pos;
  while (*pos < s.size() && IsIdentChar(s[*pos])) ++*pos;
  return s.substr(start, *pos - start);
}

}  // namespace

Result<Value> ActionExecutor::ResolveMacro(bool is_new, const std::string& var,
                                           const std::string& attr,
                                           const ActionContext& ctx) const {
  const TriggerRuntime* t = ctx.trigger;
  const auto& nodes = t->graph.nodes();

  if (!is_new) {
    // :OLD refers to the pre-update image, which only exists for the
    // token's own tuple variable.
    const std::string& arrival_var = nodes[ctx.arrival_node].info.var;
    if (!var.empty() && !EqualsIgnoreCase(var, arrival_var)) {
      return Status::InvalidArgument(
          ":OLD." + var + " does not name the updated tuple variable (" +
          arrival_var + ")");
    }
    if (!ctx.token.old_tuple.has_value()) {
      return Status::InvalidArgument(
          ":OLD reference in a trigger fired by an insert");
    }
    const Schema& schema = t->network->node_schema(ctx.arrival_node);
    TMAN_ASSIGN_OR_RETURN(size_t f, schema.RequireField(attr));
    return ctx.token.old_tuple->at(f);
  }

  // :NEW — qualified: the named variable's binding; unqualified: the
  // unique binding that has the attribute.
  Bindings b;
  for (size_t i = 0; i < nodes.size(); ++i) {
    b.Bind(nodes[i].info.var, &t->network->node_schema(i), &ctx.bindings[i]);
  }
  return b.Lookup(ToLower(var), ToLower(attr));
}

Result<std::string> ActionExecutor::SubstituteMacros(
    const std::string& sql, const ActionContext& ctx) const {
  std::string out;
  out.reserve(sql.size());
  size_t pos = 0;
  while (pos < sql.size()) {
    char c = sql[pos];
    if (c != ':') {
      out.push_back(c);
      ++pos;
      continue;
    }
    size_t save = pos;
    ++pos;
    std::string kind = ReadIdent(sql, &pos);
    bool is_new = EqualsIgnoreCase(kind, "new");
    bool is_old = EqualsIgnoreCase(kind, "old");
    if ((!is_new && !is_old) || pos >= sql.size() || sql[pos] != '.') {
      out.push_back(':');
      pos = save + 1;
      continue;
    }
    ++pos;  // '.'
    std::string first = ReadIdent(sql, &pos);
    std::string var;
    std::string attr = first;
    if (pos < sql.size() && sql[pos] == '.' && pos + 1 < sql.size() &&
        IsIdentChar(sql[pos + 1])) {
      size_t dot = pos;
      ++pos;
      std::string second = ReadIdent(sql, &pos);
      // ":NEW.emp.salary": emp is the variable — but only when "emp"
      // actually names one; otherwise back off to the one-part form
      // (e.g. ":NEW.salary.x" in "salary.x" table-qualified SQL).
      bool known_var = false;
      for (const auto& n : ctx.trigger->graph.nodes()) {
        if (EqualsIgnoreCase(n.info.var, first) ||
            EqualsIgnoreCase(n.info.source_name, first)) {
          known_var = true;
          break;
        }
      }
      if (known_var) {
        var = first;
        attr = second;
      } else {
        pos = dot;  // rewind: treat as :NEW.attr
      }
    }
    TMAN_ASSIGN_OR_RETURN(Value v, ResolveMacro(is_new, var, attr, ctx));
    out += v.ToString();
  }
  return out;
}

Status ActionExecutor::Execute(const ActionContext& ctx) {
  return ExecuteSpec(ctx, ctx.trigger->cmd.action);
}

Status ActionExecutor::ExecuteSpec(const ActionContext& ctx,
                                   const ActionSpec& action) {
  actions_.fetch_add(1, std::memory_order_relaxed);
  if (action.kind == ActionKind::kExecSql) {
    TMAN_ASSIGN_OR_RETURN(std::string sql,
                          SubstituteMacros(action.sql, ctx));
    auto result = ExecuteSql(db_, sql);
    if (!result.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return result.status();
    }
    sql_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  // raise event
  Bindings b;
  const auto& nodes = ctx.trigger->graph.nodes();
  for (size_t i = 0; i < nodes.size(); ++i) {
    b.Bind(nodes[i].info.var, &ctx.trigger->network->node_schema(i),
           &ctx.bindings[i]);
  }
  Event event;
  event.name = action.event_name;
  event.args.reserve(action.event_args.size());
  for (const ExprPtr& arg : action.event_args) {
    auto v = EvalExpr(arg, b);
    if (!v.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return v.status();
    }
    event.args.push_back(*v);
  }
  events_->Raise(std::move(event));
  raised_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

ActionStats ActionExecutor::stats() const {
  ActionStats st;
  st.actions_executed = actions_.load(std::memory_order_relaxed);
  st.sql_statements = sql_.load(std::memory_order_relaxed);
  st.events_raised = raised_.load(std::memory_order_relaxed);
  st.action_errors = errors_.load(std::memory_order_relaxed);
  return st;
}

}  // namespace tman
