#include "core/data_source.h"

#include "util/string_util.h"

namespace tman {

Result<DataSourceId> DataSourceRegistry::DefineLocalTable(
    Database* db, const std::string& table) {
  std::string name = ToLower(table);
  TMAN_ASSIGN_OR_RETURN(TableId id, db->TableIdOf(name));
  TMAN_ASSIGN_OR_RETURN(Schema schema, db->SchemaOf(name));
  std::lock_guard<std::mutex> lock(mutex_);
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("data source already defined: " + name);
  }
  DataSourceInfo info;
  info.id = id;
  info.name = name;
  info.schema = std::move(schema);
  info.kind = DataSourceKind::kLocalTable;
  by_name_[name] = info;
  name_by_id_[info.id] = name;
  return info.id;
}

Result<DataSourceId> DataSourceRegistry::DefineStream(
    const std::string& name_in, const Schema& schema) {
  std::string name = ToLower(name_in);
  std::lock_guard<std::mutex> lock(mutex_);
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("data source already defined: " + name);
  }
  DataSourceInfo info;
  info.id = next_stream_id_++;
  info.name = name;
  info.schema = schema;
  info.kind = DataSourceKind::kStream;
  by_name_[name] = info;
  name_by_id_[info.id] = name;
  return info.id;
}

Result<DataSourceInfo> DataSourceRegistry::Lookup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(ToLower(name));
  if (it == by_name_.end()) {
    return Status::NotFound("no such data source: " + name);
  }
  return it->second;
}

Result<DataSourceInfo> DataSourceRegistry::LookupById(DataSourceId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = name_by_id_.find(id);
  if (it == name_by_id_.end()) {
    return Status::NotFound("no data source with id " + std::to_string(id));
  }
  return by_name_.at(it->second);
}

bool DataSourceRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return by_name_.count(ToLower(name)) > 0;
}

std::vector<DataSourceInfo> DataSourceRegistry::All() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<DataSourceInfo> out;
  out.reserve(by_name_.size());
  for (const auto& [name, info] : by_name_) out.push_back(info);
  return out;
}

}  // namespace tman
