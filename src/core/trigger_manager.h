#ifndef TRIGGERMAN_CORE_TRIGGER_MANAGER_H_
#define TRIGGERMAN_CORE_TRIGGER_MANAGER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/trigger_cache.h"
#include "catalog/trigger_catalog.h"
#include "core/actions.h"
#include "core/aggregates.h"
#include "core/data_source.h"
#include "core/events.h"
#include "core/trigger.h"
#include "db/database.h"
#include "expr/token_batch.h"
#include "predindex/predicate_index.h"
#include "predindex/reoptimizer.h"
#include "runtime/driver.h"
#include "runtime/stage_metrics.h"
#include "runtime/task_queue.h"
#include "storage/table_queue.h"
#include "storage/wal.h"

namespace tman {

/// Configuration of a TriggerMan instance.
struct TriggerManagerOptions {
  /// Trigger cache capacity in trigger descriptions (§5.1's example:
  /// 16,384 descriptions fit a 64 MB cache at ~4 KB each).
  size_t trigger_cache_capacity = 16384;

  /// Constant-set organization policy (thresholds / forcing).
  OrgPolicy org_policy;

  /// Driver/TmanTest configuration (§6).
  DriverConfig driver_config;

  /// A-TREAT construction policy.
  ATreatOptions network_options;

  /// Stage update descriptors through the persistent queue table (§3:
  /// "the safety of persistent update queuing"); false = main-memory
  /// delivery ("faster, but the safety ... will be lost").
  bool persistent_queue = true;

  /// Condition-level concurrency (Figure 5): fan each token into this
  /// many partition tasks. 1 = token-level concurrency only.
  uint32_t condition_partitions = 1;

  /// Columnar token-batch size: memory-mode batch submissions are chunked
  /// into groups of up to this many tokens, each group processed as ONE
  /// task through the batched predicate-index probe and the batched
  /// bytecode VM. <= 1 disables batching (every token gets its own task
  /// and runs the scalar pipeline — the differential-testing oracle).
  uint32_t batch_size = kDefaultTokenBatchSize;

  /// Rule-action concurrency: run fired actions as separate tasks
  /// instead of inline with condition testing.
  bool concurrent_actions = false;

  /// Durable ingestion: log every submitted batch to a write-ahead log
  /// and group-commit it before acknowledging, so acked-but-unprocessed
  /// tokens survive a crash and are replayed by Open(). Implies the WAL
  /// is authoritative over the persistent staging queue on recovery.
  bool durable_wal = false;

  /// Checkpoint the WAL (snapshot live state, truncate the dead prefix)
  /// once it retains more than this many bytes.
  uint64_t wal_checkpoint_bytes = 256 * 1024;

  /// Online adaptive re-optimization: Start() also spawns a background
  /// thread that runs one ConstantSetReoptimizer round every
  /// adapt_interval, switching constant-set organizations whose observed
  /// traffic says the install-time choice is wrong (see
  /// predindex/reoptimizer.h). Rounds can always be driven manually via
  /// RunAdaptationRound() / the `adapt run` command, even when false.
  bool adaptive = false;
  std::chrono::milliseconds adapt_interval{200};

  /// Hysteresis knobs and cost-model calibration for the re-optimizer.
  AdaptPolicy adapt_policy;
  CostModelParams cost_model;
};

/// Durable identity of a submitted batch: the session it came from and
/// the per-token sequence numbers the IPC layer assigned. Logged with the
/// batch so per-session exactly-once dedup survives a restart; ack_seq is
/// the session high-water mark after this batch (it also covers tokens
/// the server deduplicated or rejected, which carry no payload here).
struct BatchStamp {
  std::string session;
  uint64_t ack_seq = 0;
  std::vector<uint64_t> seqs;  // parallel to the submitted tokens
};

/// What WAL recovery found and re-staged during Open().
struct WalRecoveryInfo {
  uint64_t batches_replayed = 0;
  uint64_t tokens_replayed = 0;
  uint64_t checkpoints_seen = 0;
  uint64_t sessions_restored = 0;
};

/// Aggregate statistics.
struct TriggerManagerStats {
  uint64_t updates_submitted = 0;
  uint64_t tokens_processed = 0;
  uint64_t rule_firings = 0;
  ActionStats actions;
  TriggerCacheStats cache;
  PredicateIndexStats predicates;
  WalStats wal;                      // zeroes when durable_wal is off
  uint64_t wal_pending_tokens = 0;   // durable tokens not yet processed
  /// Live per-stage latency/throughput + queue depth (tentpole part a).
  StageMetricsSnapshot stages;
  /// Adaptation counters: rounds run, organization switches installed,
  /// and total log events (applied + failed attempts).
  uint64_t adapt_rounds = 0;
  uint64_t adapt_switches = 0;
  uint64_t adapt_events = 0;
};

/// TriggerMan: the asynchronous trigger processor. Owns the predicate
/// index, trigger cache, catalogs, update queue, task queue and driver
/// pool; exposes the command language plus programmatic APIs.
///
/// Typical use:
///   Database db;
///   ... create tables ...
///   TriggerManager tman(&db);
///   tman.Open();
///   tman.ExecuteCommand("define data source emp (...)");  // or
///   tman.DefineLocalTableSource("emp");
///   tman.ExecuteCommand("create trigger t1 from emp when ... do ...");
///   tman.Start();              // driver threads (or ProcessPending()
///                              // for single-threaded operation)
class TriggerManager {
 public:
  explicit TriggerManager(Database* db,
                          TriggerManagerOptions options = {});
  ~TriggerManager();

  TriggerManager(const TriggerManager&) = delete;
  TriggerManager& operator=(const TriggerManager&) = delete;

  /// Opens catalogs and queues, and reloads previously created triggers
  /// from the catalog (rebuilding the predicate index).
  Status Open();

  // --- command language ---------------------------------------------------

  /// Parses and executes one command; returns a human-readable summary.
  Result<std::string> ExecuteCommand(std::string_view text);

  /// Executes a ';'-separated script.
  Result<std::string> ExecuteScript(std::string_view text);

  // --- data sources ---------------------------------------------------------

  /// Registers a local MiniDB table as a data source and installs the
  /// update-capture hook (the auto-created "one trigger per table per
  /// update event" of §3).
  Result<DataSourceId> DefineLocalTableSource(const std::string& table);

  /// Registers a stream data source (data source API).
  Result<DataSourceId> DefineStreamSource(const std::string& name,
                                          const Schema& schema);

  // --- triggers ----------------------------------------------------------

  Status CreateTrigger(const CreateTriggerCmd& cmd);
  Status DropTrigger(const std::string& name);
  Status SetTriggerEnabled(const std::string& name, bool enabled);
  Status CreateTriggerSet(const std::string& name,
                          const std::string& comments);
  Status SetTriggerSetEnabled(const std::string& name, bool enabled);

  // --- update ingestion & processing -----------------------------------------

  /// Data source API entry: stages an update descriptor for asynchronous
  /// processing (persistent queue table or in-memory task).
  Status SubmitUpdate(const UpdateDescriptor& token);

  /// Batched entry: stages a whole batch with ONE task-queue PushBatch —
  /// one shard-lock acquisition and one driver wakeup amortized over the
  /// batch — so a remote ingestion batch does not take the queue lock
  /// per update. `per_update` (optional) receives one Status per token
  /// in order; the returned Status is the first failure (all tokens are
  /// attempted regardless).
  /// With durable_wal, the batch is appended to the WAL and group-
  /// committed before any task is staged; the call returns only once the
  /// batch is durable (or with the commit error, in which case nothing
  /// was staged and no session sequence advanced). `stamp` (optional)
  /// records the batch's session identity in the log so dedup state
  /// survives restarts.
  Status SubmitUpdateBatch(const std::vector<UpdateDescriptor>& tokens,
                           std::vector<Status>* per_update = nullptr,
                           const BatchStamp* stamp = nullptr);

  /// Synchronously processes everything currently staged (single-
  /// threaded path used by tests and by callers not running drivers).
  Status ProcessPending();

  /// Starts / stops the driver pool (asynchronous processing).
  Status Start();
  void Stop();

  /// Blocks until all staged work is processed (drivers must be running).
  void Drain();

  // --- introspection -----------------------------------------------------------

  TriggerManagerStats stats() const;

  // --- adaptive re-optimization ------------------------------------------------

  /// One observation + adaptation round over the predicate index,
  /// serialized against the background thread. Callable whether or not
  /// options_.adaptive is set (tests and the `adapt run` command).
  AdaptRoundReport RunAdaptationRound();

  /// Gates the background thread's rounds without stopping it (`adapt
  /// on` / `adapt off`). Manual RunAdaptationRound calls are unaffected.
  void set_adaptive_enabled(bool enabled) {
    adapt_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool adaptive_enabled() const {
    return adapt_enabled_.load(std::memory_order_relaxed);
  }

  AdaptationLog& adaptation_log() { return adapt_log_; }
  ConstantSetReoptimizer& reoptimizer() { return *reopt_; }
  StageMetrics& stage_metrics() { return stage_metrics_; }

  // --- durability ------------------------------------------------------------

  bool wal_enabled() const { return wal_ != nullptr; }
  Wal* wal() { return wal_.get(); }

  /// Highest acknowledged sequence recovered (or logged) for `session` —
  /// the IPC server seeds reconnecting sessions from this so an
  /// idempotent resend after a crash is deduplicated.
  uint64_t RecoveredSessionSeq(const std::string& session) const;

  /// Logs a checkpoint record (live sessions + unprocessed tokens),
  /// commits it and truncates the log prefix it makes dead. Called
  /// automatically when the log exceeds wal_checkpoint_bytes.
  Status CheckpointWal();

  /// What the last Open() replayed from the WAL.
  const WalRecoveryInfo& last_recovery() const { return last_recovery_; }

  /// Durable tokens whose processing has not completed yet.
  uint64_t WalPendingTokens() const;

  /// Cluster rejoin fencing: for each (session, fence) pair, marks every
  /// pending (staged-but-unprocessed) token of that session with
  /// sequence > fence as fenced. A fenced token is never processed — its
  /// task completes by writing the kProcessed marker only. The router
  /// fences a rejoining node at the highest sequence it saw acked on the
  /// node's old channel: everything above the fence was re-routed to the
  /// partitions' new owners while the node was down, so replaying it here
  /// would fire it twice cluster-wide. Returns the number of tokens
  /// fenced. Fences are not durable — the router re-sends them with every
  /// partition-map install, so a crash between fencing and the markers'
  /// commit just re-fences on the next rejoin. Each (session, fence
  /// point) is applied at most once per process lifetime: later installs
  /// carrying the same fence must not swallow post-rejoin live traffic
  /// staged above the old fence point.
  uint64_t FenceWalSessions(const std::map<std::string, uint64_t>& fences);

  /// Durable metadata blob riding in the WAL (latest write wins, carried
  /// inside checkpoints so truncation preserves it). The cluster node
  /// stores its partition-map epoch here so a rejoining node can prove
  /// how stale its map is. SetDurableMeta group-commits before returning.
  Status SetDurableMeta(std::string_view blob);

  /// Last recovered (or set) durable meta blob; empty if none.
  std::string RecoveredMeta() const;

  /// Engine-wide processing hold, enforced inside the task queue: while
  /// paused no driver (threaded pool or external pumper) pops a task, so
  /// staged tokens cannot fire. Ingestion, WAL staging and acks continue.
  /// Open() pauses automatically when a former cluster member (non-empty
  /// durable meta) recovers unprocessed WAL tokens — the router's rejoin
  /// fences may invalidate some of them, and the hold must bind before
  /// any driver starts. The ClusterNode releases it on the next
  /// partition-map install; a deliberately standalone reopen of an
  /// ex-member calls ResumeProcessing() itself.
  void PauseProcessing() { task_queue_.Pause(); }
  void ResumeProcessing() { task_queue_.Resume(); }
  bool processing_paused() const { return task_queue_.paused(); }

  EventManager& events() { return events_; }
  /// Task-queue depth feeds the remote-ingestion credit window (ipc/);
  /// tests also install observers through this.
  TaskQueue& task_queue() { return task_queue_; }
  PredicateIndex& predicate_index() { return *pindex_; }
  TriggerCache& cache() { return *cache_; }
  TriggerCatalog& catalog() { return *catalog_; }
  DataSourceRegistry& sources() { return registry_; }
  Database* database() { return db_; }

  /// Pins a trigger (tests / tooling).
  Result<TriggerHandle> PinTrigger(const std::string& name);

 private:
  struct TriggerMeta {
    TriggerId id = 0;
    uint64_t ts_id = 0;
    bool enabled = true;
    bool multi_variable = false;
    bool is_aggregate = false;

    /// True when tokens must run the maintenance pass for this trigger
    /// (stored alpha memories or aggregate group state).
    bool needs_maintenance() const { return multi_variable || is_aggregate; }
  };

  /// §5.1 steps 1–5 for an already-parsed statement. When `catalog_write`
  /// is false the trigger is being reloaded and catalog rows already
  /// exist.
  Status InstallTrigger(const CreateTriggerCmd& cmd, TriggerId trigger_id,
                        uint64_t ts_id, bool catalog_write);

  /// Builds the TriggerRuntime (parse → condition graph → network).
  Result<std::shared_ptr<TriggerRuntime>> BuildRuntime(
      const CreateTriggerCmd& cmd, TriggerId trigger_id, uint64_t ts_id);

  /// Token pipeline (§5.4): memory maintenance + fire matching + joins +
  /// action execution for one partition of the predicate index.
  Status ProcessToken(const UpdateDescriptor& token, uint32_t partition,
                      uint32_t num_partitions);

  /// Batched token pipeline: the maintenance pass runs per token (alpha
  /// memory upkeep is stateful and order-sensitive), then ALL tokens go
  /// through one PredicateIndex::MatchBatch fire pass — grouped probe
  /// hashing and batched rest-of-predicate eval — with per-lane error
  /// isolation (a failing token never stops its batch-mates). Firing
  /// order per token is exactly the scalar order. Returns the first
  /// per-token error.
  Status ProcessTokenBatch(const std::vector<UpdateDescriptor>& tokens,
                           uint32_t partition, uint32_t num_partitions);

  /// The maintenance pass of ProcessToken (stored alpha memories,
  /// aggregate group state), shared by the scalar and batched pipelines.
  Status MaintainToken(const UpdateDescriptor& token, uint32_t partition,
                       uint32_t num_partitions);

  Status RunFiring(const PredicateMatch& match, const TriggerHandle& trigger,
                   const UpdateDescriptor& token);

  /// Aggregate-trigger path (driven from token maintenance, so deletes
  /// and updates reach group state regardless of the event clause): apply
  /// one tuple delta to the group-by evaluator and run the action for
  /// every group whose having condition just became true.
  Status RunAggregateDelta(const std::shared_ptr<GroupByEvaluator>& agg,
                           const TriggerHandle& trigger,
                           const UpdateDescriptor& token, const Tuple& tuple,
                           bool add, NetworkNodeId arrival_node);

  /// Loader installed into the trigger cache.
  Result<TriggerHandle> LoadTrigger(TriggerId id);

  /// Registers a local table in the registry + predicate index and
  /// installs the capture hook (no catalog write).
  Status RestoreLocalTableSource(const std::string& table);

  /// True if the trigger and its set are enabled.
  bool IsEnabled(TriggerId id) const;

  Status EnqueueTokenTasks(const UpdateDescriptor& token);

  /// Durable-path batch submission (WAL append + group commit + staging).
  Status SubmitDurableBatch(const std::vector<UpdateDescriptor>& tokens,
                            std::vector<Status>* per_update,
                            const BatchStamp* stamp);

  /// Like AppendTokenTasks, but each task reports back to the WAL
  /// bookkeeping (MarkWalProcessed) when its partition completes.
  void AppendWalTokenTasks(const UpdateDescriptor& token, uint64_t batch_id,
                           uint32_t index, std::vector<Task>* out);

  /// Pump task for WAL-mode staging-queue records (which are wrapped
  /// with their batch id and token index).
  Task MakeWalPumpTask();

  /// One partitioned task of (batch_id, index) finished; when the whole
  /// token is done, appends a kProcessed marker (made durable by the
  /// next commit round) and drops it from the pending map.
  void MarkWalProcessed(uint64_t batch_id, uint32_t index);

  /// Replays the WAL during Open(): rebuilds session dedup state, drops
  /// processed tokens, re-stages the rest.
  Status RecoverFromWal();

  void MaybeCheckpointWal();

  /// Human-readable stats for the `stats` console/wire command.
  std::string StatsText() const;

  /// The `adapt <subcommand>` console/wire command: status | log | run |
  /// on | off.
  Result<std::string> AdaptCommand(std::string_view args);

  /// Builds the token task(s) for one descriptor (one per condition
  /// partition) without pushing, so batch submission can hand the whole
  /// set to TaskQueue::PushBatch in one call.
  void AppendTokenTasks(const UpdateDescriptor& token, std::vector<Task>* out);

  /// Chunks `tokens` into groups of options_.batch_size and builds one
  /// ProcessTokenBatch task per (group, partition). batch_size <= 1
  /// degrades to per-token AppendTokenTasks (scalar pipeline).
  void AppendTokenBatchTasks(const std::vector<UpdateDescriptor>& tokens,
                             std::vector<Task>* out);

  /// Builds the pump task that drains one record from the persistent
  /// update queue (§3 staging).
  Task MakePumpTask();

  Database* db_;
  TriggerManagerOptions options_;

  std::unique_ptr<TriggerCatalog> catalog_;
  std::unique_ptr<PredicateIndex> pindex_;
  std::unique_ptr<TriggerCache> cache_;
  std::unique_ptr<TableQueue> update_queue_;  // persistent staging
  std::unique_ptr<Wal> wal_;                  // durable ingestion log
  DataSourceRegistry registry_;
  EventManager events_;
  std::unique_ptr<ActionExecutor> actions_;
  TaskQueue task_queue_;
  std::unique_ptr<DriverPool> drivers_;

  mutable std::shared_mutex meta_mutex_;
  std::map<TriggerId, TriggerMeta> trigger_meta_;
  std::map<std::string, TriggerId> trigger_by_name_;
  std::map<TriggerId, std::vector<ExprId>> expr_ids_by_trigger_;
  // Aggregate (group by/having) state lives outside the trigger cache so
  // eviction cannot drop group counters.
  std::map<TriggerId, std::shared_ptr<GroupByEvaluator>> aggregates_;
  std::map<uint64_t, bool> set_enabled_;
  // Per-source count of triggers needing the maintenance pass (multi-
  // variable networks with stored memories, or aggregate group state).
  std::map<DataSourceId, uint32_t> maintenance_triggers_;
  uint64_t default_ts_id_ = 0;
  bool opened_ = false;

  std::atomic<uint64_t> updates_submitted_{0};
  std::atomic<uint64_t> tokens_processed_{0};
  std::atomic<uint64_t> rule_firings_{0};

  // --- adaptive re-optimization ---------------------------------------------
  AdaptationLog adapt_log_;
  std::unique_ptr<ConstantSetReoptimizer> reopt_;
  StageMetrics stage_metrics_;
  // Serializes RunOnce (the reoptimizer keeps per-round deltas and is not
  // itself thread-safe; the background thread and `adapt run` may race).
  std::mutex adapt_run_mutex_;
  std::atomic<uint64_t> adapt_rounds_{0};
  std::atomic<bool> adapt_enabled_{true};
  // Background round thread (options_.adaptive): started by Start(),
  // joined by Stop().
  std::thread adapt_thread_;
  std::mutex adapt_thread_mutex_;
  std::condition_variable adapt_thread_cv_;
  bool adapt_stop_ = false;

  /// True when cluster fencing marked this pending token as not-to-run.
  bool IsWalTokenFenced(uint64_t batch_id, uint32_t index) const;

  // --- WAL bookkeeping (guarded by wal_mutex_) -------------------------------
  struct PendingToken {
    std::string serialized;
    uint64_t seq = 0;  // session sequence (0 = unstamped submitter)
    uint32_t remaining_parts = 1;
    bool fenced = false;  // see FenceWalSessions
  };
  struct PendingBatch {
    std::string session;
    std::map<uint32_t, PendingToken> tokens;  // index -> token
  };
  mutable std::mutex wal_mutex_;
  // Durable-but-unprocessed tokens, keyed by batch id (the batch record's
  // end LSN). Checkpoints snapshot exactly this map plus wal_sessions_.
  std::map<uint64_t, PendingBatch> wal_pending_;
  // Batches registered in wal_pending_ whose group commit has not resolved
  // yet. CheckpointWal waits for this to drain before snapshotting: a
  // batch whose commit fails is erased and its session seq rolled back,
  // so a checkpoint that listed it would durably resurrect it (and replay
  // would fire it again after the client's dedup-passing resend).
  uint64_t wal_commits_in_flight_ = 0;
  std::condition_variable wal_inflight_cv_;
  // Per-session acknowledged high-water marks (the durable dedup state).
  std::map<std::string, uint64_t> wal_sessions_;
  // Highest fence point already applied per session (FenceWalSessions);
  // deliberately NOT durable — a reboot must re-fence recovered tokens.
  std::map<std::string, uint64_t> wal_fences_applied_;
  // Durable metadata blob (SetDurableMeta); latest record wins on replay.
  std::string wal_meta_;
  std::atomic<bool> wal_checkpointing_{false};
  WalRecoveryInfo last_recovery_;
};

}  // namespace tman

#endif  // TRIGGERMAN_CORE_TRIGGER_MANAGER_H_
