#include "core/client.h"

#include "parser/parser.h"
#include "util/string_util.h"

namespace tman {

ClientConnection::ClientConnection(TriggerManager* tman,
                                   std::string client_name)
    : tman_(tman), name_(std::move(client_name)) {}

ClientConnection::~ClientConnection() { Close(); }

Result<std::string> ClientConnection::Command(std::string_view text) {
  if (closed_) return Status::Aborted("connection closed");
  // Peek at the command type to record trigger creations for cleanup.
  auto parsed = ParseCommand(text);
  TMAN_ASSIGN_OR_RETURN(std::string msg, tman_->ExecuteCommand(text));
  if (parsed.ok()) {
    if (auto* create = std::get_if<CreateTriggerCmd>(&*parsed)) {
      created_triggers_.push_back(create->name);
    } else if (auto* drop = std::get_if<DropTriggerCmd>(&*parsed)) {
      for (auto it = created_triggers_.begin();
           it != created_triggers_.end(); ++it) {
        if (EqualsIgnoreCase(*it, drop->name)) {
          created_triggers_.erase(it);
          break;
        }
      }
    }
  }
  return msg;
}

uint64_t ClientConnection::RegisterForEvent(const std::string& event_name,
                                            EventConsumer consumer) {
  uint64_t id = tman_->events().Register(event_name, std::move(consumer));
  registrations_.push_back(id);
  return id;
}

void ClientConnection::Unregister(uint64_t registration_id) {
  tman_->events().Unregister(registration_id);
  for (auto it = registrations_.begin(); it != registrations_.end(); ++it) {
    if (*it == registration_id) {
      registrations_.erase(it);
      return;
    }
  }
}

Status ClientConnection::SubmitUpdate(const UpdateDescriptor& token) {
  if (closed_) return Status::Aborted("connection closed");
  return tman_->SubmitUpdate(token);
}

Status ClientConnection::SubmitUpdateBatch(
    const std::vector<UpdateDescriptor>& tokens,
    std::vector<Status>* per_update, const BatchStamp* stamp) {
  if (closed_) return Status::Aborted("connection closed");
  return tman_->SubmitUpdateBatch(tokens, per_update, stamp);
}

Status ClientConnection::DropMyTriggers() {
  Status first = Status::OK();
  for (const std::string& name : created_triggers_) {
    Status s = tman_->DropTrigger(name);
    if (!s.ok() && first.ok() && !s.IsNotFound()) first = s;
  }
  created_triggers_.clear();
  return first;
}

void ClientConnection::Close() {
  if (closed_) return;
  for (uint64_t id : registrations_) {
    tman_->events().Unregister(id);
  }
  registrations_.clear();
  closed_ = true;
}

}  // namespace tman
