#ifndef TRIGGERMAN_CORE_CLIENT_H_
#define TRIGGERMAN_CORE_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/trigger_manager.h"

namespace tman {

/// The TriggerMan client API (Figure 1): "client applications ... connect
/// to TriggerMan, issue commands, register for events, and so forth."
/// A ClientConnection scopes a client's event registrations and tracks
/// the triggers it created, so disconnecting (or Close()) cleans up
/// registrations — the in-process analogue of the client library that
/// shipped with TriggerMan.
class ClientConnection {
 public:
  /// Connects a named client to a TriggerMan instance.
  ClientConnection(TriggerManager* tman, std::string client_name);
  ~ClientConnection();

  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;

  /// Issues one TriggerMan command; create-trigger commands are recorded
  /// so DropMyTriggers() can undo this client's work.
  Result<std::string> Command(std::string_view text);

  /// Registers this client for an event ("*" = all). The registration
  /// lives until Unregister/Close/destruction.
  uint64_t RegisterForEvent(const std::string& event_name,
                            EventConsumer consumer);
  void Unregister(uint64_t registration_id);

  /// Submits an update descriptor on behalf of a data source program
  /// (the data source API shares the transport in this in-process build).
  Status SubmitUpdate(const UpdateDescriptor& token);

  /// Batched variant: the whole batch reaches the task queue in one
  /// PushBatch (see TriggerManager::SubmitUpdateBatch). `stamp` carries
  /// the batch's durable session identity when the instance runs a WAL.
  Status SubmitUpdateBatch(const std::vector<UpdateDescriptor>& tokens,
                           std::vector<Status>* per_update = nullptr,
                           const BatchStamp* stamp = nullptr);

  /// Drops every trigger this connection created (best effort; returns
  /// the first error but keeps going).
  Status DropMyTriggers();

  /// Unregisters all event consumers. Called by the destructor.
  void Close();

  const std::string& name() const { return name_; }
  const std::vector<std::string>& created_triggers() const {
    return created_triggers_;
  }
  bool closed() const { return closed_; }

 private:
  TriggerManager* tman_;
  std::string name_;
  std::vector<uint64_t> registrations_;
  std::vector<std::string> created_triggers_;
  bool closed_ = false;
};

}  // namespace tman

#endif  // TRIGGERMAN_CORE_CLIENT_H_
