#ifndef TRIGGERMAN_CORE_ACTIONS_H_
#define TRIGGERMAN_CORE_ACTIONS_H_

#include <atomic>
#include <vector>

#include "core/events.h"
#include "core/trigger.h"
#include "db/database.h"

namespace tman {

/// Everything an action needs about the firing that triggered it: the
/// trigger, the complete variable bindings from the P-node (aligned with
/// the condition graph nodes), the token that caused the firing, and the
/// node where it arrived (for :OLD references).
struct ActionContext {
  const TriggerRuntime* trigger = nullptr;
  std::vector<Tuple> bindings;
  UpdateDescriptor token;
  NetworkNodeId arrival_node = 0;
};

struct ActionStats {
  uint64_t actions_executed = 0;
  uint64_t sql_statements = 0;
  uint64_t events_raised = 0;
  uint64_t action_errors = 0;
};

/// Executes trigger actions: `execSQL` statements (with :NEW/:OLD macro
/// substitution, §2: "values matching the trigger condition are
/// substituted into the trigger action using macro substitution") against
/// MiniDB, and `raise event` notifications through the EventManager.
class ActionExecutor {
 public:
  ActionExecutor(Database* db, EventManager* events)
      : db_(db), events_(events) {}

  Status Execute(const ActionContext& ctx);

  /// Executes with an explicit action spec (aggregate triggers substitute
  /// group values into the action arguments before execution).
  Status ExecuteSpec(const ActionContext& ctx, const ActionSpec& action);

  /// Substitutes :NEW.var.attr / :OLD.var.attr (and unqualified
  /// :NEW.attr) macros with SQL literals from the firing's bindings.
  /// Exposed for tests.
  Result<std::string> SubstituteMacros(const std::string& sql,
                                       const ActionContext& ctx) const;

  ActionStats stats() const;

 private:
  Result<Value> ResolveMacro(bool is_new, const std::string& var,
                             const std::string& attr,
                             const ActionContext& ctx) const;

  Database* db_;
  EventManager* events_;
  mutable std::atomic<uint64_t> actions_{0};
  mutable std::atomic<uint64_t> sql_{0};
  mutable std::atomic<uint64_t> raised_{0};
  mutable std::atomic<uint64_t> errors_{0};
};

}  // namespace tman

#endif  // TRIGGERMAN_CORE_ACTIONS_H_
