#ifndef TRIGGERMAN_CORE_EVENTS_H_
#define TRIGGERMAN_CORE_EVENTS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "types/value.h"

namespace tman {

/// One raised event: name plus evaluated argument values.
struct Event {
  std::string name;
  std::vector<Value> args;

  std::string ToString() const;
};

/// Callback of a client application registered for an event. Consumers
/// run on the thread that executed the trigger action.
using EventConsumer = std::function<void(const Event&)>;

/// The `raise event` subsystem ([Hans98]'s client/server event
/// notification, reduced to its in-process essentials): rule actions
/// raise named events; client applications register to receive them.
/// Undelivered events are retained in a bounded history so late-joining
/// consumers (and tests) can inspect recent activity.
class EventManager {
 public:
  explicit EventManager(size_t history_capacity = 1024)
      : history_capacity_(history_capacity) {}

  /// Registers a consumer for `event_name` ("*" = every event). Returns
  /// a registration id usable with Unregister.
  uint64_t Register(const std::string& event_name, EventConsumer consumer);
  void Unregister(uint64_t registration_id);

  /// Raises an event: delivers to consumers and appends to history.
  void Raise(Event event);

  uint64_t num_raised() const;

  /// Most recent events, oldest first.
  std::vector<Event> History() const;
  void ClearHistory();

 private:
  struct Registration {
    uint64_t id;
    std::string event_name;  // lowercase; "*" matches all
    EventConsumer consumer;
  };

  const size_t history_capacity_;
  mutable std::mutex mutex_;
  std::vector<Registration> consumers_;
  std::deque<Event> history_;
  uint64_t next_id_ = 1;
  uint64_t raised_ = 0;
};

}  // namespace tman

#endif  // TRIGGERMAN_CORE_EVENTS_H_
