#include "core/events.h"

#include "util/string_util.h"

namespace tman {

std::string Event::ToString() const {
  std::string out = name + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

uint64_t EventManager::Register(const std::string& event_name,
                                EventConsumer consumer) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t id = next_id_++;
  consumers_.push_back({id, ToLower(event_name), std::move(consumer)});
  return id;
}

void EventManager::Unregister(uint64_t registration_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = consumers_.begin(); it != consumers_.end(); ++it) {
    if (it->id == registration_id) {
      consumers_.erase(it);
      return;
    }
  }
}

void EventManager::Raise(Event event) {
  std::vector<EventConsumer> to_notify;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++raised_;
    std::string lname = ToLower(event.name);
    for (const Registration& r : consumers_) {
      if (r.event_name == "*" || r.event_name == lname) {
        to_notify.push_back(r.consumer);
      }
    }
    history_.push_back(event);
    while (history_.size() > history_capacity_) history_.pop_front();
  }
  // Deliver outside the lock: consumers may re-enter (e.g. create
  // triggers or raise further events).
  for (const EventConsumer& c : to_notify) c(event);
}

uint64_t EventManager::num_raised() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return raised_;
}

std::vector<Event> EventManager::History() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<Event>(history_.begin(), history_.end());
}

void EventManager::ClearHistory() {
  std::lock_guard<std::mutex> lock(mutex_);
  history_.clear();
}

}  // namespace tman
