#ifndef TRIGGERMAN_CORE_AGGREGATES_H_
#define TRIGGERMAN_CORE_AGGREGATES_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "expr/compile.h"
#include "expr/eval.h"
#include "expr/expr.h"
#include "types/schema.h"
#include "types/update_descriptor.h"
#include "util/result.h"

namespace tman {

/// Aggregate functions supported in having-clauses and aggregate-trigger
/// actions.
enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

/// One aggregate call found in a trigger's having clause or action
/// arguments: kind plus argument expression (null for count(*) — spelled
/// count() or count(attr)).
struct AggSpec {
  AggKind kind = AggKind::kCount;
  ExprPtr arg;  // may be null (count with no argument)
};

/// Incremental group-by/having evaluation for single-source aggregate
/// triggers — the paper lists scalable processing of trigger conditions
/// involving aggregates as future work (§9); this is a working baseline
/// implementation, not the paper's contribution.
///
/// Semantics: tokens that passed the trigger's selection predicate flow
/// in; each token is assigned to a group by the group-by expressions;
/// aggregates update incrementally (inserts add, deletes remove, updates
/// move); the having condition is evaluated after each change and the
/// trigger fires on a false->true transition (edge-triggered alerting).
///
/// Restrictions (checked where cheap, documented otherwise): one tuple
/// variable; having/action aggregates reference only that variable;
/// non-aggregate column refs in the having clause must be group-by
/// columns (they are evaluated against the arriving token, which agrees
/// with the group on exactly those columns).
class GroupByEvaluator {
 public:
  /// Analyzes the clauses: collects aggregate calls from `having` and
  /// `action_args`, replacing each with a placeholder so the clauses can
  /// be instantiated per group.
  static Result<std::unique_ptr<GroupByEvaluator>> Create(
      std::string var, Schema schema, std::vector<ExprPtr> group_by,
      ExprPtr having, const std::vector<ExprPtr>& action_args);

  /// One fired group: its key, and the aggregate values at firing time.
  struct Firing {
    std::vector<Value> group_key;
    std::vector<Value> agg_values;  // aligned with the collected AggSpecs
  };

  /// Feeds one token (which already passed selection); returns the groups
  /// whose having condition just became true.
  Result<std::vector<Firing>> Apply(const UpdateDescriptor& token);

  /// Maintenance-path entry: adds or removes a single tuple (which
  /// already passed selection) and reports edge firings. The trigger
  /// manager feeds aggregate state this way so deletes and updates reach
  /// the groups regardless of the trigger's event clause.
  Result<std::vector<Firing>> ApplyDelta(const Tuple& tuple, bool add);

  /// Instantiates an action argument for a firing: aggregate placeholders
  /// are bound to the firing's values; the returned expression is then
  /// evaluated against the token tuple by the caller.
  Result<ExprPtr> InstantiateActionArg(size_t arg_index,
                                       const Firing& firing) const;

  size_t num_groups() const;
  size_t num_aggregates() const { return specs_.size(); }

 private:
  GroupByEvaluator() = default;

  struct AggState {
    int64_t count = 0;
    double sum = 0;
    std::multiset<Value> values;  // min/max support under deletion
  };

  struct GroupState {
    std::vector<Value> key;
    int64_t rows = 0;
    std::vector<AggState> aggs;
    bool was_true = false;
  };

  /// Replaces aggregate calls in `e` with placeholders, appending new
  /// specs to specs_ (deduplicating structurally equal calls).
  Result<ExprPtr> ExtractAggregates(const ExprPtr& e);

  Result<std::vector<Value>> GroupKeyOf(const Tuple& tuple) const;
  Status AddTuple(GroupState* g, const Tuple& tuple);
  Status RemoveTuple(GroupState* g, const Tuple& tuple);
  Result<Value> CurrentValue(const AggState& a, AggKind kind) const;
  Result<bool> HavingTrue(const GroupState& g, const Tuple& token_tuple,
                          std::vector<Value>* agg_values) const;

  /// Compiles group-by keys, aggregate arguments, and the having template
  /// against the token schema (called once from Create).
  void CompileClauses();

  std::string var_;
  Schema schema_;
  std::vector<ExprPtr> group_by_;
  ExprPtr having_template_;  // having with aggregate placeholders
  std::vector<ExprPtr> action_arg_templates_;
  std::vector<AggSpec> specs_;

  /// Bytecode programs for the per-token hot path (null entries fall back
  /// to the interpreter). The having program takes the aggregate values
  /// as VM parameters, replacing the per-eval BindPlaceholders rebuild.
  std::vector<std::shared_ptr<const CompiledPredicate>> compiled_group_by_;
  std::vector<std::shared_ptr<const CompiledPredicate>> compiled_agg_args_;
  std::shared_ptr<const CompiledPredicate> compiled_having_;

  mutable std::mutex mutex_;
  std::map<std::string, GroupState> groups_;  // encoded key -> state
};

/// Parses an aggregate function name; NotFound for non-aggregates.
Result<AggKind> AggKindFromName(std::string_view name);

}  // namespace tman

#endif  // TRIGGERMAN_CORE_AGGREGATES_H_
