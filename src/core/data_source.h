#ifndef TRIGGERMAN_CORE_DATA_SOURCE_H_
#define TRIGGERMAN_CORE_DATA_SOURCE_H_

#include <map>
#include <mutex>
#include <string>

#include "db/database.h"
#include "types/schema.h"
#include "types/update_descriptor.h"
#include "util/result.h"

namespace tman {

/// Kinds of data sources (§3): local tables captured through
/// automatically-installed triggers, or generic data source programs
/// (streams) feeding updates through the data source API.
enum class DataSourceKind { kLocalTable, kStream };

struct DataSourceInfo {
  DataSourceId id = 0;
  std::string name;
  Schema schema;
  DataSourceKind kind = DataSourceKind::kLocalTable;
};

/// Registry of defined data sources. Local tables reuse their MiniDB
/// TableId as DataSourceId; stream sources get ids in a disjoint range.
class DataSourceRegistry {
 public:
  DataSourceRegistry() = default;

  /// Registers a local MiniDB table as a data source (the `define data
  /// source` command against the default connection).
  Result<DataSourceId> DefineLocalTable(Database* db,
                                        const std::string& table);

  /// Registers an external stream source with an explicit schema.
  Result<DataSourceId> DefineStream(const std::string& name,
                                    const Schema& schema);

  Result<DataSourceInfo> Lookup(const std::string& name) const;
  Result<DataSourceInfo> LookupById(DataSourceId id) const;
  bool Has(const std::string& name) const;

  std::vector<DataSourceInfo> All() const;

 private:
  static constexpr DataSourceId kStreamIdBase = 1u << 20;

  mutable std::mutex mutex_;
  std::map<std::string, DataSourceInfo> by_name_;
  std::map<DataSourceId, std::string> name_by_id_;
  DataSourceId next_stream_id_ = kStreamIdBase;
};

}  // namespace tman

#endif  // TRIGGERMAN_CORE_DATA_SOURCE_H_
