#ifndef TRIGGERMAN_CORE_TRIGGER_H_
#define TRIGGERMAN_CORE_TRIGGER_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/condition_graph.h"
#include "network/atreat.h"
#include "parser/ast.h"
#include "predindex/predicate_entry.h"

namespace tman {

/// The complete description of one trigger as kept in the trigger cache
/// (§5.1): identity, parsed syntax tree, condition graph, A-TREAT network
/// skeleton, and the action. Instances are shared immutably through
/// TriggerHandle (the pin); alpha memories inside the network are
/// internally synchronized so concurrent token processing is safe.
struct TriggerRuntime {
  TriggerId id = 0;
  uint64_t ts_id = 0;
  std::string name;   // lowercase
  std::string text;   // original create trigger statement

  CreateTriggerCmd cmd;          // parsed syntax tree
  ConditionGraph graph;          // condition graph (§5.1 step 3)
  std::unique_ptr<ATreatNetwork> network;  // step 4

  /// exprIDs of the selection predicates registered in the predicate
  /// index for this trigger (used by drop trigger).
  std::vector<ExprId> expr_ids;

  bool multi_variable() const { return graph.nodes().size() > 1; }
};

}  // namespace tman

#endif  // TRIGGERMAN_CORE_TRIGGER_H_
