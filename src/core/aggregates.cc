#include "core/aggregates.h"

#include "expr/rewrite.h"
#include "types/tuple.h"
#include "util/string_util.h"

namespace tman {

Result<AggKind> AggKindFromName(std::string_view name) {
  std::string lower = ToLower(name);
  if (lower == "count") return AggKind::kCount;
  if (lower == "sum") return AggKind::kSum;
  if (lower == "avg") return AggKind::kAvg;
  if (lower == "min") return AggKind::kMin;
  if (lower == "max") return AggKind::kMax;
  return Status::NotFound("not an aggregate: " + std::string(name));
}

Result<std::unique_ptr<GroupByEvaluator>> GroupByEvaluator::Create(
    std::string var, Schema schema, std::vector<ExprPtr> group_by,
    ExprPtr having, const std::vector<ExprPtr>& action_args) {
  if (group_by.empty()) {
    return Status::InvalidArgument("group by requires at least one column");
  }
  std::unique_ptr<GroupByEvaluator> ev(new GroupByEvaluator());
  ev->var_ = std::move(var);
  ev->schema_ = std::move(schema);
  ev->group_by_ = std::move(group_by);
  if (having != nullptr) {
    TMAN_ASSIGN_OR_RETURN(ev->having_template_,
                          ev->ExtractAggregates(having));
  }
  for (const ExprPtr& arg : action_args) {
    TMAN_ASSIGN_OR_RETURN(ExprPtr t, ev->ExtractAggregates(arg));
    ev->action_arg_templates_.push_back(std::move(t));
  }
  ev->CompileClauses();
  return ev;
}

void GroupByEvaluator::CompileClauses() {
  BindingLayout layout;
  layout.Add(var_, &schema_);
  compiled_group_by_.reserve(group_by_.size());
  for (const ExprPtr& e : group_by_) {
    compiled_group_by_.push_back(TryCompilePredicate(e, layout));
  }
  compiled_agg_args_.reserve(specs_.size());
  for (const AggSpec& spec : specs_) {
    compiled_agg_args_.push_back(
        spec.arg == nullptr ? nullptr : TryCompilePredicate(spec.arg, layout));
  }
  if (having_template_ != nullptr) {
    // The aggregate placeholders become VM parameter loads, so the per-eval
    // BindPlaceholders tree rebuild disappears from the hot path.
    CompileOptions opts;
    opts.allow_params = true;
    compiled_having_ = TryCompilePredicate(having_template_, layout, opts);
  }
}

Result<ExprPtr> GroupByEvaluator::ExtractAggregates(const ExprPtr& e) {
  if (e == nullptr) return e;
  if (e->kind == ExprKind::kFunctionCall) {
    auto kind = AggKindFromName(e->func_name);
    if (kind.ok()) {
      if (e->children.size() > 1) {
        return Status::InvalidArgument(e->func_name +
                                       " takes at most one argument");
      }
      AggSpec spec;
      spec.kind = *kind;
      spec.arg = e->children.empty() ? nullptr : e->children[0];
      if (*kind != AggKind::kCount && spec.arg == nullptr) {
        return Status::InvalidArgument(e->func_name +
                                       " requires an argument");
      }
      // Deduplicate structurally equal aggregate calls.
      for (size_t i = 0; i < specs_.size(); ++i) {
        if (specs_[i].kind == spec.kind &&
            ExprEquals(specs_[i].arg, spec.arg)) {
          return MakePlaceholder(static_cast<int>(i + 1));
        }
      }
      specs_.push_back(std::move(spec));
      return MakePlaceholder(static_cast<int>(specs_.size()));
    }
  }
  if (e->children.empty()) return e;
  std::vector<ExprPtr> children;
  children.reserve(e->children.size());
  bool changed = false;
  for (const ExprPtr& c : e->children) {
    TMAN_ASSIGN_OR_RETURN(ExprPtr nc, ExtractAggregates(c));
    changed = changed || nc != c;
    children.push_back(std::move(nc));
  }
  if (!changed) return e;
  auto out = std::make_shared<Expr>(*e);
  out->children = std::move(children);
  return ExprPtr(out);
}

Result<std::vector<Value>> GroupByEvaluator::GroupKeyOf(
    const Tuple& tuple) const {
  const Tuple* tuples[] = {&tuple};
  std::vector<Value> key;
  key.reserve(group_by_.size());
  for (size_t i = 0; i < group_by_.size(); ++i) {
    Value v;
    if (compiled_group_by_[i] != nullptr) {
      TMAN_ASSIGN_OR_RETURN(v, compiled_group_by_[i]->EvalValue(tuples, 1));
    } else {
      Bindings b;
      b.Bind(var_, &schema_, &tuple);
      TMAN_ASSIGN_OR_RETURN(v, EvalExpr(group_by_[i], b));
    }
    key.push_back(std::move(v));
  }
  return key;
}

Result<Value> GroupByEvaluator::CurrentValue(const AggState& a,
                                             AggKind kind) const {
  switch (kind) {
    case AggKind::kCount:
      return Value::Int(a.count);
    case AggKind::kSum:
      return Value::Float(a.sum);
    case AggKind::kAvg:
      if (a.count == 0) return Value::Null();
      return Value::Float(a.sum / static_cast<double>(a.count));
    case AggKind::kMin:
      if (a.values.empty()) return Value::Null();
      return *a.values.begin();
    case AggKind::kMax:
      if (a.values.empty()) return Value::Null();
      return *a.values.rbegin();
  }
  return Status::Internal("unknown aggregate kind");
}

Status GroupByEvaluator::AddTuple(GroupState* g, const Tuple& tuple) {
  const Tuple* tuples[] = {&tuple};
  ++g->rows;
  for (size_t i = 0; i < specs_.size(); ++i) {
    AggState& a = g->aggs[i];
    const AggSpec& spec = specs_[i];
    if (spec.arg == nullptr) {
      ++a.count;  // count(*)
      continue;
    }
    Value v;
    if (compiled_agg_args_[i] != nullptr) {
      TMAN_ASSIGN_OR_RETURN(v, compiled_agg_args_[i]->EvalValue(tuples, 1));
    } else {
      Bindings b;
      b.Bind(var_, &schema_, &tuple);
      TMAN_ASSIGN_OR_RETURN(v, EvalExpr(spec.arg, b));
    }
    if (v.is_null()) continue;  // SQL: aggregates skip NULLs
    ++a.count;
    if (v.is_numeric()) a.sum += v.AsDouble();
    if (spec.kind == AggKind::kMin || spec.kind == AggKind::kMax) {
      a.values.insert(v);
    }
  }
  return Status::OK();
}

Status GroupByEvaluator::RemoveTuple(GroupState* g, const Tuple& tuple) {
  const Tuple* tuples[] = {&tuple};
  if (g->rows > 0) --g->rows;
  for (size_t i = 0; i < specs_.size(); ++i) {
    AggState& a = g->aggs[i];
    const AggSpec& spec = specs_[i];
    if (spec.arg == nullptr) {
      if (a.count > 0) --a.count;
      continue;
    }
    Value v;
    if (compiled_agg_args_[i] != nullptr) {
      TMAN_ASSIGN_OR_RETURN(v, compiled_agg_args_[i]->EvalValue(tuples, 1));
    } else {
      Bindings b;
      b.Bind(var_, &schema_, &tuple);
      TMAN_ASSIGN_OR_RETURN(v, EvalExpr(spec.arg, b));
    }
    if (v.is_null()) continue;
    if (a.count > 0) --a.count;
    if (v.is_numeric()) a.sum -= v.AsDouble();
    if (spec.kind == AggKind::kMin || spec.kind == AggKind::kMax) {
      auto it = a.values.find(v);
      if (it != a.values.end()) a.values.erase(it);
    }
  }
  return Status::OK();
}

Result<bool> GroupByEvaluator::HavingTrue(
    const GroupState& g, const Tuple& token_tuple,
    std::vector<Value>* agg_values) const {
  agg_values->clear();
  agg_values->reserve(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    TMAN_ASSIGN_OR_RETURN(Value v, CurrentValue(g.aggs[i], specs_[i].kind));
    agg_values->push_back(std::move(v));
  }
  if (having_template_ == nullptr) return true;
  if (compiled_having_ != nullptr) {
    const Tuple* tuples[] = {&token_tuple};
    return compiled_having_->EvalBool(tuples, 1, agg_values->data(),
                                      agg_values->size());
  }
  TMAN_ASSIGN_OR_RETURN(ExprPtr bound,
                        BindPlaceholders(having_template_, *agg_values));
  Bindings b;
  b.Bind(var_, &schema_, &token_tuple);
  return EvalPredicate(bound, b);
}

Result<std::vector<GroupByEvaluator::Firing>> GroupByEvaluator::ApplyDelta(
    const Tuple& tuple, bool add) {
  UpdateDescriptor token = add ? UpdateDescriptor::Insert(0, tuple)
                               : UpdateDescriptor::Delete(0, tuple);
  return Apply(token);
}

Result<std::vector<GroupByEvaluator::Firing>> GroupByEvaluator::Apply(
    const UpdateDescriptor& token) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Firing> firings;

  auto touch = [&](const Tuple& tuple, bool add) -> Status {
    TMAN_ASSIGN_OR_RETURN(std::vector<Value> key, GroupKeyOf(tuple));
    std::string encoded;
    Tuple(key).Serialize(&encoded);
    auto it = groups_.find(encoded);
    if (it == groups_.end()) {
      if (!add) return Status::OK();  // removing from an unseen group
      GroupState g;
      g.key = key;
      g.aggs.resize(specs_.size());
      it = groups_.emplace(encoded, std::move(g)).first;
    }
    GroupState& g = it->second;
    TMAN_RETURN_IF_ERROR(add ? AddTuple(&g, tuple) : RemoveTuple(&g, tuple));
    std::vector<Value> agg_values;
    TMAN_ASSIGN_OR_RETURN(bool now_true, HavingTrue(g, tuple, &agg_values));
    if (now_true && !g.was_true) {
      firings.push_back(Firing{g.key, std::move(agg_values)});
    }
    g.was_true = now_true;
    if (g.rows == 0 && !g.was_true) groups_.erase(it);
    return Status::OK();
  };

  if (token.old_tuple.has_value() &&
      (token.op == OpCode::kDelete || token.op == OpCode::kUpdate)) {
    TMAN_RETURN_IF_ERROR(touch(*token.old_tuple, /*add=*/false));
  }
  if (token.new_tuple.has_value() &&
      (token.op == OpCode::kInsert || token.op == OpCode::kUpdate)) {
    TMAN_RETURN_IF_ERROR(touch(*token.new_tuple, /*add=*/true));
  }
  return firings;
}

Result<ExprPtr> GroupByEvaluator::InstantiateActionArg(
    size_t arg_index, const Firing& firing) const {
  if (arg_index >= action_arg_templates_.size()) {
    return Status::InvalidArgument("no such action argument");
  }
  return BindPlaceholders(action_arg_templates_[arg_index],
                          firing.agg_values);
}

size_t GroupByEvaluator::num_groups() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return groups_.size();
}

}  // namespace tman
