#include "core/trigger_manager.h"

#include <algorithm>

#include "expr/rewrite.h"
#include "parser/parser.h"
#include "util/codec.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace tman {

namespace {

constexpr char kMetaTable[] = "tman_meta";
constexpr char kQueueMetaKey[] = "update_queue_meta_page";
constexpr char kWalMetaKey[] = "wal_header_page";
constexpr char kDefaultSetName[] = "default";

// WAL kBatch payload:
//   len-prefixed session (empty = unstamped, at-least-once)
//   u64 ack_seq
//   u32 token_count, then per token: u64 seq, len-prefixed descriptor
// WAL kProcessed payload: u64 batch_id, u32 token_index.
// WAL kCheckpointV2 payload:
//   len-prefixed durable meta blob
//   u32 session_count, per session: len-prefixed name, u64 seq
//   u32 batch_count, per batch: u64 batch_id, len-prefixed session,
//     u32 token_count, per token: u32 index, u64 seq,
//     len-prefixed descriptor
// WAL kCheckpoint payload (legacy; still replayed, never written):
//   u32 session_count, per session: len-prefixed name, u64 seq
//   u32 batch_count, per batch: u64 batch_id, len-prefixed session,
//     u32 token_count, per token: u32 index, len-prefixed descriptor

Status WalDecodeError() {
  return Status::Corruption("wal: malformed record payload");
}

}  // namespace

TriggerManager::TriggerManager(Database* db, TriggerManagerOptions options)
    : db_(db), options_(options) {
  catalog_ = std::make_unique<TriggerCatalog>(db_);
  pindex_ = std::make_unique<PredicateIndex>(db_, options_.org_policy);
  cache_ = std::make_unique<TriggerCache>(
      options_.trigger_cache_capacity,
      [this](TriggerId id) { return LoadTrigger(id); });
  actions_ = std::make_unique<ActionExecutor>(db_, &events_);
  drivers_ = std::make_unique<DriverPool>(&task_queue_, options_.driver_config);
  ReoptimizerOptions ropt;
  ropt.cost = options_.cost_model;
  ropt.policy = options_.adapt_policy;
  ropt.faults = options_.driver_config.fault_injector;
  reopt_ = std::make_unique<ConstantSetReoptimizer>(pindex_.get(), &adapt_log_,
                                                    ropt);
}

TriggerManager::~TriggerManager() { Stop(); }

Status TriggerManager::Open() {
  TMAN_RETURN_IF_ERROR(catalog_->Open());

  // Default trigger set.
  TMAN_ASSIGN_OR_RETURN(auto def, catalog_->GetTriggerSet(kDefaultSetName));
  if (def.has_value()) {
    default_ts_id_ = def->ts_id;
  } else {
    TMAN_ASSIGN_OR_RETURN(
        default_ts_id_,
        catalog_->CreateTriggerSet(kDefaultSetName, "default trigger set"));
  }

  // Persistent update queue: its metadata page id is remembered in a tiny
  // meta table so staged updates survive a reopen.
  if (!db_->HasTable(kMetaTable)) {
    TMAN_RETURN_IF_ERROR(
        db_->CreateTable(kMetaTable, Schema({{"meta_key", DataType::kVarchar},
                                             {"meta_value", DataType::kInt}}))
            .status());
  }
  std::optional<PageId> queue_meta;
  TMAN_RETURN_IF_ERROR(db_->Scan(kMetaTable, [&](const Rid&, const Tuple& t) {
    if (t.at(0).as_string() == kQueueMetaKey) {
      queue_meta = static_cast<PageId>(t.at(1).as_int());
      return false;
    }
    return true;
  }));
  if (!queue_meta.has_value()) {
    TMAN_ASSIGN_OR_RETURN(PageId page,
                          TableQueue::Create(db_->buffer_pool()));
    TMAN_RETURN_IF_ERROR(
        db_->Insert(kMetaTable,
                    Tuple({Value::String(kQueueMetaKey),
                           Value::Int(static_cast<int64_t>(page))}))
            .status());
    queue_meta = page;
  }
  update_queue_ =
      std::make_unique<TableQueue>(db_->buffer_pool(), *queue_meta);

  // Restore cataloged data sources (the registry definitions survive in
  // the tman_data_source table), then catalog any sources the caller
  // defined before Open().
  opened_ = true;
  TMAN_ASSIGN_OR_RETURN(auto source_rows, catalog_->AllDataSources());
  for (const TriggerCatalog::DataSourceRow& row : source_rows) {
    if (registry_.Has(row.name)) continue;
    if (row.is_local_table) {
      TMAN_RETURN_IF_ERROR(RestoreLocalTableSource(row.name));
    } else {
      TMAN_ASSIGN_OR_RETURN(DataSourceId id,
                            registry_.DefineStream(row.name, row.schema));
      TMAN_RETURN_IF_ERROR(pindex_->RegisterDataSource(id, row.schema));
    }
  }
  for (const DataSourceInfo& info : registry_.All()) {
    bool cataloged = false;
    for (const auto& row : source_rows) {
      if (row.name == info.name) {
        cataloged = true;
        break;
      }
    }
    if (cataloged) continue;
    TriggerCatalog::DataSourceRow row;
    row.name = info.name;
    row.is_local_table = info.kind == DataSourceKind::kLocalTable;
    row.schema = info.schema;
    TMAN_RETURN_IF_ERROR(catalog_->InsertDataSource(row));
  }

  // Reload previously created triggers: rebuild the predicate index and
  // prime their networks.
  TMAN_ASSIGN_OR_RETURN(std::vector<TriggerRow> rows, catalog_->AllTriggers());
  for (const TriggerRow& row : rows) {
    TMAN_ASSIGN_OR_RETURN(Command cmd, ParseCommand(row.trigger_text));
    auto* create = std::get_if<CreateTriggerCmd>(&cmd);
    if (create == nullptr) {
      return Status::Corruption("catalog trigger_text is not create trigger: " +
                                row.name);
    }
    TMAN_RETURN_IF_ERROR(
        InstallTrigger(*create, row.trigger_id, row.ts_id,
                       /*catalog_write=*/false));
    if (!row.is_enabled) {
      std::unique_lock lock(meta_mutex_);
      trigger_meta_[row.trigger_id].enabled = false;
    }
  }

  // Durable ingestion: open (or create) the write-ahead log and replay
  // whatever a previous incarnation left behind. This runs last so the
  // predicate index and sources are ready for the re-staged tokens.
  if (options_.durable_wal) {
    std::optional<PageId> wal_meta;
    TMAN_RETURN_IF_ERROR(
        db_->Scan(kMetaTable, [&](const Rid&, const Tuple& t) {
          if (t.at(0).as_string() == kWalMetaKey) {
            wal_meta = static_cast<PageId>(t.at(1).as_int());
            return false;
          }
          return true;
        }));
    if (!wal_meta.has_value()) {
      TMAN_ASSIGN_OR_RETURN(PageId page, Wal::Create(db_->disk()));
      TMAN_RETURN_IF_ERROR(
          db_->Insert(kMetaTable,
                      Tuple({Value::String(kWalMetaKey),
                             Value::Int(static_cast<int64_t>(page))}))
              .status());
      // The meta row itself must survive the next crash, or the WAL
      // header becomes unreachable.
      TMAN_RETURN_IF_ERROR(db_->buffer_pool()->FlushAll());
      wal_meta = page;
    }
    TMAN_ASSIGN_OR_RETURN(wal_, Wal::Open(db_->disk(), *wal_meta));
    TMAN_RETURN_IF_ERROR(RecoverFromWal());
    // A former cluster member (durable meta carries its partition-map
    // epoch) that recovered unprocessed tokens must not fire them yet:
    // the router may have re-routed some while this node was down, and
    // only the fences on the next partition-map install say which. Pause
    // dispatch here — before any driver can start — so the hold binds
    // engine-wide, not just drivers that poll the cluster layer.
    if (!wal_meta_.empty() && WalPendingTokens() > 0) {
      task_queue_.Pause();
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Data sources
// ---------------------------------------------------------------------------

Status TriggerManager::RestoreLocalTableSource(const std::string& table) {
  TMAN_ASSIGN_OR_RETURN(DataSourceId id,
                        registry_.DefineLocalTable(db_, table));
  TMAN_ASSIGN_OR_RETURN(DataSourceInfo info, registry_.LookupById(id));
  TMAN_RETURN_IF_ERROR(pindex_->RegisterDataSource(id, info.schema));
  // The auto-installed update-capture trigger of §3: every change to the
  // table becomes an update descriptor submitted to TriggerMan.
  return db_->SetUpdateHook(table, [this](const UpdateDescriptor& token) {
    Status s = SubmitUpdate(token);
    if (!s.ok()) {
      TMAN_LOG(kError) << "update capture failed: " << s.ToString();
    }
  });
}

Result<DataSourceId> TriggerManager::DefineLocalTableSource(
    const std::string& table) {
  TMAN_RETURN_IF_ERROR(RestoreLocalTableSource(table));
  TMAN_ASSIGN_OR_RETURN(DataSourceInfo info, registry_.Lookup(table));
  if (opened_) {
    TriggerCatalog::DataSourceRow row;
    row.name = info.name;
    row.is_local_table = true;
    Status s = catalog_->InsertDataSource(row);
    if (!s.ok() && !s.IsAlreadyExists()) return s;
  }
  return info.id;
}

Result<DataSourceId> TriggerManager::DefineStreamSource(
    const std::string& name, const Schema& schema) {
  TMAN_ASSIGN_OR_RETURN(DataSourceId id, registry_.DefineStream(name, schema));
  TMAN_RETURN_IF_ERROR(pindex_->RegisterDataSource(id, schema));
  if (opened_) {
    TriggerCatalog::DataSourceRow row;
    row.name = ToLower(name);
    row.is_local_table = false;
    row.schema = schema;
    Status s = catalog_->InsertDataSource(row);
    if (!s.ok() && !s.IsAlreadyExists()) return s;
  }
  return id;
}

// ---------------------------------------------------------------------------
// Trigger definition (§5.1)
// ---------------------------------------------------------------------------

Result<std::shared_ptr<TriggerRuntime>> TriggerManager::BuildRuntime(
    const CreateTriggerCmd& cmd, TriggerId trigger_id, uint64_t ts_id) {
  if ((!cmd.group_by.empty() || cmd.having != nullptr) &&
      cmd.from.size() != 1) {
    return Status::NotSupported(
        "aggregate conditions over joins are future work (paper §9); "
        "group by/having requires a single tuple variable");
  }
  if (cmd.having != nullptr && cmd.group_by.empty()) {
    return Status::InvalidArgument("having requires a group by clause");
  }

  // Step 1 (validate): resolve the from-list against defined sources.
  std::vector<TupleVarInfo> vars;
  std::vector<Schema> schemas;
  for (const TupleVarDecl& decl : cmd.from) {
    TMAN_ASSIGN_OR_RETURN(DataSourceInfo info, registry_.Lookup(decl.source));
    for (const TupleVarInfo& existing : vars) {
      if (EqualsIgnoreCase(existing.var, decl.var)) {
        return Status::InvalidArgument("duplicate tuple variable: " +
                                       decl.var);
      }
    }
    TupleVarInfo v;
    v.var = decl.var;
    v.source_name = info.name;
    v.source_id = info.id;
    v.event = OpCode::kInsertOrUpdate;
    vars.push_back(std::move(v));
    schemas.push_back(info.schema);
  }

  // Apply the on-clause to its target tuple variable.
  std::vector<std::string> update_columns;
  int event_var = -1;
  if (cmd.on.has_value()) {
    const EventSpec& spec = *cmd.on;
    std::string target = spec.target;
    if (target.empty() && vars.size() == 1) target = vars[0].var;
    if (target.empty()) {
      return Status::InvalidArgument(
          "on-clause needs a target (e.g. 'on insert to house') when the "
          "trigger has several tuple variables");
    }
    for (size_t i = 0; i < vars.size(); ++i) {
      if (EqualsIgnoreCase(vars[i].var, target) ||
          EqualsIgnoreCase(vars[i].source_name, target)) {
        if (event_var >= 0) {
          return Status::InvalidArgument("ambiguous event target: " + target);
        }
        event_var = static_cast<int>(i);
      }
    }
    if (event_var < 0) {
      return Status::InvalidArgument("event target not in from-list: " +
                                     target);
    }
    vars[static_cast<size_t>(event_var)].event = spec.op;
    for (const std::string& col : spec.columns) {
      auto pieces = Split(col, '.');
      update_columns.push_back(ToLower(pieces.back()));
    }
    std::sort(update_columns.begin(), update_columns.end());
    update_columns.erase(
        std::unique(update_columns.begin(), update_columns.end()),
        update_columns.end());
  }

  // Step 2: qualify the when/group-by/having clauses and convert the
  // when-clause to CNF.
  auto resolver = [&](const std::string& attr) -> Result<std::string> {
    int found = -1;
    for (size_t i = 0; i < vars.size(); ++i) {
      if (schemas[i].FieldIndex(attr) >= 0) {
        if (found >= 0) {
          return Status::InvalidArgument("ambiguous attribute: " + attr);
        }
        found = static_cast<int>(i);
      }
    }
    if (found < 0) return Status::NotFound("no such attribute: " + attr);
    return vars[static_cast<size_t>(found)].var;
  };
  auto validator = [&](const std::string& var,
                       const std::string& attr) -> Status {
    for (size_t i = 0; i < vars.size(); ++i) {
      if (EqualsIgnoreCase(vars[i].var, var)) {
        if (schemas[i].FieldIndex(attr) < 0) {
          return Status::NotFound("no attribute " + attr +
                                  " in tuple variable " + var);
        }
        return Status::OK();
      }
    }
    return Status::NotFound("unknown tuple variable: " + var);
  };
  ExprPtr when = cmd.when;
  if (when != nullptr) {
    TMAN_ASSIGN_OR_RETURN(when, QualifyColumnRefs(when, resolver, validator));
  }
  std::vector<ExprPtr> group_by;
  for (const ExprPtr& g : cmd.group_by) {
    TMAN_ASSIGN_OR_RETURN(ExprPtr q,
                          QualifyColumnRefs(g, resolver, validator));
    group_by.push_back(std::move(q));
  }
  ExprPtr having = cmd.having;
  if (having != nullptr) {
    TMAN_ASSIGN_OR_RETURN(having,
                          QualifyColumnRefs(having, resolver, validator));
  }
  std::vector<ExprPtr> cnf;
  if (when != nullptr) {
    TMAN_ASSIGN_OR_RETURN(cnf, ToCnf(when));
  }

  // Step 3: trigger condition graph.
  TMAN_ASSIGN_OR_RETURN(ConditionGraph graph,
                        ConditionGraph::Build(vars, cnf));

  // Step 4: A-TREAT network.
  auto runtime = std::make_shared<TriggerRuntime>();
  runtime->id = trigger_id;
  runtime->ts_id = ts_id;
  runtime->name = ToLower(cmd.name);
  runtime->text = cmd.original_text;
  runtime->cmd = cmd;
  runtime->graph = graph;
  // Stash the normalized update-columns and qualified aggregate clauses
  // back into the command so later consumers see them uniformly.
  if (runtime->cmd.on.has_value()) {
    runtime->cmd.on->columns = update_columns;
  }
  runtime->cmd.group_by = std::move(group_by);
  runtime->cmd.having = std::move(having);
  // Qualify action event arguments as well, so aggregate extraction and
  // evaluation see resolved column refs.
  for (ExprPtr& arg : runtime->cmd.action.event_args) {
    TMAN_ASSIGN_OR_RETURN(arg, QualifyColumnRefs(arg, resolver, validator));
  }
  TMAN_ASSIGN_OR_RETURN(
      runtime->network,
      ATreatNetwork::Build(runtime->graph, db_, options_.network_options,
                           schemas));
  return runtime;
}

Status TriggerManager::InstallTrigger(const CreateTriggerCmd& cmd,
                                      TriggerId trigger_id, uint64_t ts_id,
                                      bool catalog_write) {
  TMAN_ASSIGN_OR_RETURN(std::shared_ptr<TriggerRuntime> runtime,
                        BuildRuntime(cmd, trigger_id, ts_id));

  // Step 5: register each node's selection predicate in the predicate
  // index, creating signatures/constant tables as needed.
  std::vector<ExprId> expr_ids;
  for (size_t i = 0; i < runtime->graph.nodes().size(); ++i) {
    const ConditionGraph::Node& node = runtime->graph.nodes()[i];
    PredicateSpec spec;
    spec.data_source = node.info.source_id;
    spec.op = node.info.event;
    if (runtime->cmd.on.has_value() &&
        node.info.event == runtime->cmd.on->op) {
      spec.update_columns = runtime->cmd.on->columns;
    }
    spec.predicate = node.SelectionPredicate();
    spec.trigger_id = trigger_id;
    spec.next_node = static_cast<NetworkNodeId>(i);
    auto added = pindex_->AddPredicate(spec);
    if (!added.ok()) {
      // Roll back predicates registered so far.
      for (ExprId id : expr_ids) (void)pindex_->RemovePredicate(id);
      return added.status();
    }
    expr_ids.push_back(added->expr_id);
    if (catalog_write) {
      if (added->new_signature) {
        SignatureRow row;
        row.sig_id = added->sig_id;
        row.data_src_id = spec.data_source;
        row.signature_desc = added->signature_desc;
        row.const_table_name =
            added->constants.empty()
                ? ""
                : "const_table_" + std::to_string(added->sig_id);
        row.constant_set_size = added->class_size;
        row.constant_set_organization = added->org;
        TMAN_RETURN_IF_ERROR(catalog_->InsertSignature(row));
      } else {
        TMAN_RETURN_IF_ERROR(catalog_->UpdateSignatureStats(
            added->sig_id, added->class_size, added->org));
      }
    }
  }
  runtime->expr_ids = expr_ids;

  // Aggregate triggers: create the group-by evaluator (kept outside the
  // cache; reset on reopen — the paper leaves durable aggregate state as
  // future work).
  std::shared_ptr<GroupByEvaluator> aggregate;
  if (!runtime->cmd.group_by.empty()) {
    auto ev = GroupByEvaluator::Create(
        runtime->graph.nodes()[0].info.var,
        runtime->network->node_schema(0), runtime->cmd.group_by,
        runtime->cmd.having, runtime->cmd.action.event_args);
    if (!ev.ok()) {
      for (ExprId id : expr_ids) (void)pindex_->RemovePredicate(id);
      return ev.status();
    }
    aggregate = std::move(*ev);
  }

  // Prime stored alpha memories from current table contents.
  TMAN_RETURN_IF_ERROR(runtime->network->Prime());

  {
    std::unique_lock lock(meta_mutex_);
    TriggerMeta meta;
    meta.id = trigger_id;
    meta.ts_id = ts_id;
    meta.enabled = true;
    meta.multi_variable = runtime->multi_variable();
    meta.is_aggregate = aggregate != nullptr;
    trigger_meta_[trigger_id] = meta;
    trigger_by_name_[runtime->name] = trigger_id;
    if (set_enabled_.count(ts_id) == 0) set_enabled_[ts_id] = true;
    if (meta.needs_maintenance()) {
      for (const auto& node : runtime->graph.nodes()) {
        ++maintenance_triggers_[node.info.source_id];
      }
    }
    // Remember the expr ids for drop trigger even after cache eviction.
    expr_ids_by_trigger_[trigger_id] = std::move(expr_ids);
    if (aggregate != nullptr) aggregates_[trigger_id] = std::move(aggregate);
  }

  cache_->Put(trigger_id, TriggerHandle(runtime));
  return Status::OK();
}

Status TriggerManager::CreateTrigger(const CreateTriggerCmd& cmd) {
  uint64_t ts_id = default_ts_id_;
  if (!cmd.set_name.empty()) {
    TMAN_ASSIGN_OR_RETURN(auto set, catalog_->GetTriggerSet(cmd.set_name));
    if (!set.has_value()) {
      return Status::NotFound("no such trigger set: " + cmd.set_name);
    }
    ts_id = set->ts_id;
  }
  TMAN_ASSIGN_OR_RETURN(
      TriggerId id,
      catalog_->InsertTrigger(cmd.name, ts_id, "", cmd.original_text));
  Status s = InstallTrigger(cmd, id, ts_id, /*catalog_write=*/true);
  if (!s.ok()) {
    (void)catalog_->DeleteTrigger(cmd.name);
    return s;
  }
  return Status::OK();
}

Status TriggerManager::DropTrigger(const std::string& name) {
  std::string lname = ToLower(name);
  TriggerId id = 0;
  std::vector<ExprId> expr_ids;
  {
    std::unique_lock lock(meta_mutex_);
    auto it = trigger_by_name_.find(lname);
    if (it == trigger_by_name_.end()) {
      return Status::NotFound("no such trigger: " + name);
    }
    id = it->second;
    auto eit = expr_ids_by_trigger_.find(id);
    if (eit != expr_ids_by_trigger_.end()) {
      expr_ids = eit->second;
      expr_ids_by_trigger_.erase(eit);
    }
    trigger_by_name_.erase(it);
  }
  // Fix per-source maintenance counts using the runtime if available.
  auto pinned = cache_->Pin(id);
  if (pinned.ok()) {
    std::unique_lock lock(meta_mutex_);
    if (trigger_meta_[id].needs_maintenance()) {
      for (const auto& node : (*pinned)->graph.nodes()) {
        auto mit = maintenance_triggers_.find(node.info.source_id);
        if (mit != maintenance_triggers_.end() && mit->second > 0) {
          --mit->second;
        }
      }
    }
  }
  {
    std::unique_lock lock(meta_mutex_);
    trigger_meta_.erase(id);
    aggregates_.erase(id);
  }
  for (ExprId eid : expr_ids) {
    Status s = pindex_->RemovePredicate(eid);
    if (!s.ok()) {
      TMAN_LOG(kWarn) << "drop trigger: predicate removal failed: "
                      << s.ToString();
    }
  }
  cache_->Invalidate(id);
  return catalog_->DeleteTrigger(lname);
}

Status TriggerManager::SetTriggerEnabled(const std::string& name,
                                         bool enabled) {
  std::string lname = ToLower(name);
  TMAN_RETURN_IF_ERROR(catalog_->SetTriggerEnabled(lname, enabled));
  std::unique_lock lock(meta_mutex_);
  auto it = trigger_by_name_.find(lname);
  if (it != trigger_by_name_.end()) {
    trigger_meta_[it->second].enabled = enabled;
  }
  return Status::OK();
}

Status TriggerManager::CreateTriggerSet(const std::string& name,
                                        const std::string& comments) {
  TMAN_ASSIGN_OR_RETURN(uint64_t ts_id,
                        catalog_->CreateTriggerSet(name, comments));
  std::unique_lock lock(meta_mutex_);
  set_enabled_[ts_id] = true;
  return Status::OK();
}

Status TriggerManager::SetTriggerSetEnabled(const std::string& name,
                                            bool enabled) {
  TMAN_RETURN_IF_ERROR(catalog_->SetTriggerSetEnabled(name, enabled));
  TMAN_ASSIGN_OR_RETURN(auto set, catalog_->GetTriggerSet(name));
  std::unique_lock lock(meta_mutex_);
  set_enabled_[set->ts_id] = enabled;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Command interface
// ---------------------------------------------------------------------------

Result<std::string> TriggerManager::ExecuteCommand(std::string_view text) {
  // Introspection commands sit outside the SQL-ish grammar: handled here
  // so the console AND the wire protocol (ipc ClientConnection routes
  // Command frames through ExecuteCommand) both get them.
  std::string_view trimmed = Trim(text);
  std::string lowered = ToLower(std::string(trimmed));
  if (lowered == "stats") return StatsText();
  if (lowered == "adapt" || lowered.rfind("adapt ", 0) == 0) {
    std::string_view args = trimmed.size() > 5 ? Trim(trimmed.substr(5))
                                               : std::string_view();
    return AdaptCommand(args);
  }
  TMAN_ASSIGN_OR_RETURN(Command cmd, ParseCommand(text));
  if (auto* create = std::get_if<CreateTriggerCmd>(&cmd)) {
    TMAN_RETURN_IF_ERROR(CreateTrigger(*create));
    return "trigger " + create->name + " created";
  }
  if (auto* drop = std::get_if<DropTriggerCmd>(&cmd)) {
    TMAN_RETURN_IF_ERROR(DropTrigger(drop->name));
    return "trigger " + drop->name + " dropped";
  }
  if (auto* set = std::get_if<CreateTriggerSetCmd>(&cmd)) {
    TMAN_RETURN_IF_ERROR(CreateTriggerSet(set->name, set->comments));
    return "trigger set " + set->name + " created";
  }
  if (auto* enable = std::get_if<EnableCmd>(&cmd)) {
    Status s = enable->is_set
                   ? SetTriggerSetEnabled(enable->name, enable->enable)
                   : SetTriggerEnabled(enable->name, enable->enable);
    TMAN_RETURN_IF_ERROR(s);
    return std::string(enable->enable ? "enabled " : "disabled ") +
           (enable->is_set ? "trigger set " : "trigger ") + enable->name;
  }
  if (auto* define = std::get_if<DefineDataSourceCmd>(&cmd)) {
    if (db_->HasTable(define->name)) {
      TMAN_RETURN_IF_ERROR(DefineLocalTableSource(define->name).status());
      return "data source " + define->name + " defined (local table)";
    }
    TMAN_RETURN_IF_ERROR(
        DefineStreamSource(define->name, define->schema).status());
    return "data source " + define->name + " defined (stream)";
  }
  return Status::Internal("unhandled command");
}

Result<std::string> TriggerManager::ExecuteScript(std::string_view text) {
  std::string out;
  for (const std::string& piece : Split(std::string(text), ';')) {
    std::string_view trimmed = Trim(piece);
    if (trimmed.empty()) continue;
    TMAN_ASSIGN_OR_RETURN(std::string msg, ExecuteCommand(trimmed));
    if (!out.empty()) out += "\n";
    out += msg;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token pipeline (§5.4 + §6)
// ---------------------------------------------------------------------------

Task TriggerManager::MakePumpTask() {
  // One pump task per staged descriptor: consumes the head of the
  // persistent queue on whichever driver runs first.
  Task task;
  task.kind = TaskKind::kProcessToken;
  task.work = [this]() -> Status {
    auto record = update_queue_->Dequeue();
    if (!record.ok()) {
      // NotFound just means another pump task drained our descriptor.
      // Anything else (I/O error, CRC corruption) must surface, not be
      // mistaken for an empty queue.
      if (record.status().IsNotFound()) return Status::OK();
      TMAN_LOG(kWarn) << "staged queue dequeue failed: "
                      << record.status().ToString();
      return record.status();
    }
    TMAN_ASSIGN_OR_RETURN(UpdateDescriptor t,
                          UpdateDescriptor::Deserialize(*record));
    return EnqueueTokenTasks(t);
  };
  return task;
}

Status TriggerManager::SubmitUpdate(const UpdateDescriptor& token) {
  StageTimer ingest_timer(&stage_metrics_, Stage::kIngest, 1);
  if (wal_ != nullptr) {
    // Durable mode: every submission goes through the logged batch path
    // (a single-token batch still amortizes its sync across whatever
    // concurrent submitters join the group-commit round).
    return SubmitDurableBatch({token}, nullptr, nullptr);
  }
  updates_submitted_.fetch_add(1, std::memory_order_relaxed);
  if (options_.persistent_queue && update_queue_ != nullptr) {
    std::string record;
    token.Serialize(&record);
    TMAN_RETURN_IF_ERROR(update_queue_->Enqueue(record));
    task_queue_.Push(MakePumpTask());
    return Status::OK();
  }
  return EnqueueTokenTasks(token);
}

Status TriggerManager::SubmitUpdateBatch(
    const std::vector<UpdateDescriptor>& tokens,
    std::vector<Status>* per_update, const BatchStamp* stamp) {
  StageTimer ingest_timer(&stage_metrics_, Stage::kIngest, tokens.size());
  if (wal_ != nullptr) return SubmitDurableBatch(tokens, per_update, stamp);
  updates_submitted_.fetch_add(tokens.size(), std::memory_order_relaxed);
  Status first_error = Status::OK();
  std::vector<Task> tasks;
  tasks.reserve(tokens.size());
  const bool persistent =
      options_.persistent_queue && update_queue_ != nullptr;
  if (!persistent) {
    // Memory mode: the batch is chunked into columnar token-batch tasks
    // so the whole group rides the batched pipeline end-to-end.
    AppendTokenBatchTasks(tokens, &tasks);
    if (per_update != nullptr) {
      per_update->assign(tokens.size(), Status::OK());
    }
    task_queue_.PushBatch(std::move(tasks));
    return first_error;
  }
  for (const UpdateDescriptor& token : tokens) {
    std::string record;
    token.Serialize(&record);
    Status s = update_queue_->Enqueue(record);
    if (s.ok()) tasks.push_back(MakePumpTask());
    if (!s.ok() && first_error.ok()) first_error = s;
    if (per_update != nullptr) per_update->push_back(std::move(s));
  }
  // The whole batch lands under one shard lock with one wakeup pass —
  // this is the point of the exercise.
  task_queue_.PushBatch(std::move(tasks));
  return first_error;
}

void TriggerManager::AppendTokenTasks(const UpdateDescriptor& token,
                                      std::vector<Task>* out) {
  uint32_t parts = options_.condition_partitions;
  if (parts <= 1) {
    Task task;
    task.kind = TaskKind::kProcessToken;
    UpdateDescriptor copy = token;
    task.work = [this, copy]() { return ProcessToken(copy, 0, 1); };
    out->push_back(std::move(task));
    return;
  }
  for (uint32_t p = 0; p < parts; ++p) {
    Task task;
    task.kind = TaskKind::kProcessTokenPartition;
    UpdateDescriptor copy = token;
    task.work = [this, copy, p, parts]() {
      return ProcessToken(copy, p, parts);
    };
    out->push_back(std::move(task));
  }
}

void TriggerManager::AppendTokenBatchTasks(
    const std::vector<UpdateDescriptor>& tokens, std::vector<Task>* out) {
  const size_t chunk = options_.batch_size;
  if (chunk <= 1) {
    for (const UpdateDescriptor& token : tokens) AppendTokenTasks(token, out);
    return;
  }
  const uint32_t parts = std::max(1u, options_.condition_partitions);
  for (size_t begin = 0; begin < tokens.size(); begin += chunk) {
    const size_t end = std::min(tokens.size(), begin + chunk);
    if (end - begin == 1) {
      AppendTokenTasks(tokens[begin], out);
      continue;
    }
    // The group is shared by its partition tasks; each runs the whole
    // group through the batched pipeline for its partition.
    auto group = std::make_shared<std::vector<UpdateDescriptor>>(
        tokens.begin() + begin, tokens.begin() + end);
    for (uint32_t p = 0; p < parts; ++p) {
      Task task;
      task.kind = parts == 1 ? TaskKind::kProcessToken
                             : TaskKind::kProcessTokenPartition;
      task.work = [this, group, p, parts]() {
        return ProcessTokenBatch(*group, p, parts);
      };
      out->push_back(std::move(task));
    }
  }
}

Status TriggerManager::EnqueueTokenTasks(const UpdateDescriptor& token) {
  // Called from a pump task or from SubmitUpdate (memory mode).
  std::vector<Task> tasks;
  AppendTokenTasks(token, &tasks);
  if (tasks.size() == 1) {
    task_queue_.Push(std::move(tasks.front()));
  } else {
    task_queue_.PushBatch(std::move(tasks));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Durable ingestion (WAL)
// ---------------------------------------------------------------------------

Status TriggerManager::SubmitDurableBatch(
    const std::vector<UpdateDescriptor>& tokens,
    std::vector<Status>* per_update, const BatchStamp* stamp) {
  updates_submitted_.fetch_add(tokens.size(), std::memory_order_relaxed);
  const std::string session = stamp != nullptr ? stamp->session : "";

  std::vector<std::string> records(tokens.size());
  std::string payload;
  PutLengthPrefixed(&payload, session);
  PutU64(&payload, stamp != nullptr ? stamp->ack_seq : 0);
  PutU32(&payload, static_cast<uint32_t>(tokens.size()));
  for (size_t i = 0; i < tokens.size(); ++i) {
    tokens[i].Serialize(&records[i]);
    PutU64(&payload, stamp != nullptr && i < stamp->seqs.size()
                         ? stamp->seqs[i]
                         : 0);
    PutLengthPrefixed(&payload, records[i]);
  }

  // Append + register under wal_mutex_, so a concurrent checkpoint either
  // snapshots this batch as pending or runs entirely before the append —
  // never in between (which would truncate the batch record while losing
  // it from the snapshot).
  uint64_t batch_id = 0;
  uint64_t prev_seq = 0;
  const uint32_t parts = std::max(1u, options_.condition_partitions);
  {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    auto lsn = wal_->Append(WalRecordType::kBatch, payload);
    if (!lsn.ok()) {
      if (per_update != nullptr) {
        per_update->assign(tokens.size(), lsn.status());
      }
      return lsn.status();
    }
    batch_id = *lsn;
    if (!tokens.empty()) {
      PendingBatch& batch = wal_pending_[batch_id];
      batch.session = session;
      for (size_t i = 0; i < tokens.size(); ++i) {
        uint64_t seq = stamp != nullptr && i < stamp->seqs.size()
                           ? stamp->seqs[i]
                           : 0;
        batch.tokens[static_cast<uint32_t>(i)] =
            PendingToken{std::move(records[i]), seq, parts, false};
      }
    }
    if (!session.empty()) {
      uint64_t& high = wal_sessions_[session];
      prev_seq = high;
      if (stamp->ack_seq > high) high = stamp->ack_seq;
    }
    ++wal_commits_in_flight_;
  }

  // Group commit: the batch is durable (or rejected) past this line.
  Status committed = wal_->Commit(batch_id);
  if (!committed.ok()) {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    if (--wal_commits_in_flight_ == 0) wal_inflight_cv_.notify_all();
    wal_pending_.erase(batch_id);
    if (!session.empty()) {
      // Roll the high-water mark back unless a later batch on the same
      // session advanced it further (the IPC server serializes batches
      // per session, so that only happens for out-of-band submitters).
      auto it = wal_sessions_.find(session);
      if (it != wal_sessions_.end() && it->second == stamp->ack_seq) {
        it->second = prev_seq;
      }
    }
    if (per_update != nullptr) per_update->assign(tokens.size(), committed);
    return committed;
  }
  {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    if (--wal_commits_in_flight_ == 0) wal_inflight_cv_.notify_all();
  }

  // Stage processing. Durability is already settled, so a staging-queue
  // hiccup downgrades to direct in-memory tasks rather than failing the
  // batch — the token is in the log either way.
  std::vector<Task> tasks;
  tasks.reserve(tokens.size());
  const bool persistent =
      options_.persistent_queue && update_queue_ != nullptr;
  for (size_t i = 0; i < tokens.size(); ++i) {
    bool staged = false;
    if (persistent) {
      std::string wrapped;
      PutU64(&wrapped, batch_id);
      PutU32(&wrapped, static_cast<uint32_t>(i));
      tokens[i].Serialize(&wrapped);
      if (update_queue_->Enqueue(wrapped).ok()) {
        tasks.push_back(MakeWalPumpTask());
        staged = true;
      }
    }
    if (!staged) {
      AppendWalTokenTasks(tokens[i], batch_id, static_cast<uint32_t>(i),
                          &tasks);
    }
    if (per_update != nullptr) per_update->push_back(Status::OK());
  }
  task_queue_.PushBatch(std::move(tasks));
  MaybeCheckpointWal();
  return Status::OK();
}

void TriggerManager::AppendWalTokenTasks(const UpdateDescriptor& token,
                                         uint64_t batch_id, uint32_t index,
                                         std::vector<Task>* out) {
  uint32_t parts = std::max(1u, options_.condition_partitions);
  for (uint32_t p = 0; p < parts; ++p) {
    Task task;
    task.kind = parts == 1 ? TaskKind::kProcessToken
                           : TaskKind::kProcessTokenPartition;
    UpdateDescriptor copy = token;
    task.work = [this, copy, p, parts, batch_id, index]() {
      // A token fenced by a cluster rejoin (FenceWalSessions) was already
      // re-routed to another node; complete its bookkeeping without
      // processing it so it neither fires here nor replays again.
      if (IsWalTokenFenced(batch_id, index)) {
        MarkWalProcessed(batch_id, index);
        return Status::OK();
      }
      Status s = ProcessToken(copy, p, parts);
      // Only completed partitions report back: a failed one leaves the
      // token pending so the next recovery replays it (at-least-once).
      if (s.ok()) MarkWalProcessed(batch_id, index);
      return s;
    };
    out->push_back(std::move(task));
  }
}

Task TriggerManager::MakeWalPumpTask() {
  Task task;
  task.kind = TaskKind::kProcessToken;
  task.work = [this]() -> Status {
    auto record = update_queue_->Dequeue();
    if (!record.ok()) {
      // Only NotFound means "already consumed by another pump task". A
      // real dequeue failure leaves the token in wal_pending_ until the
      // next recovery replays it; surface the error instead of silently
      // swallowing it so driver stats and tests see the stall.
      if (record.status().IsNotFound()) return Status::OK();
      TMAN_LOG(kWarn) << "wal-staged queue dequeue failed: "
                      << record.status().ToString();
      return record.status();
    }
    size_t pos = 0;
    uint64_t batch_id = 0;
    uint32_t index = 0;
    if (!GetU64(*record, &pos, &batch_id) ||
        !GetU32(*record, &pos, &index)) {
      return Status::Corruption("wal-staged queue record too short");
    }
    TMAN_ASSIGN_OR_RETURN(
        UpdateDescriptor t,
        UpdateDescriptor::Deserialize(
            std::string_view(*record).substr(pos)));
    std::vector<Task> tasks;
    AppendWalTokenTasks(t, batch_id, index, &tasks);
    // One explicit-shard batch push per staged record: recovery replay
    // runs many pump tasks back to back, and pushing their token tasks
    // one by one would serialize every pump on its home-shard lock.
    // Spreading by batch id also scatters a large replay across shards
    // instead of piling it onto the pumping thread's shard.
    task_queue_.PushBatchToShard(
        static_cast<uint32_t>(batch_id % task_queue_.num_shards()),
        std::move(tasks));
    return Status::OK();
  };
  return task;
}

void TriggerManager::MarkWalProcessed(uint64_t batch_id, uint32_t index) {
  std::lock_guard<std::mutex> lock(wal_mutex_);
  auto it = wal_pending_.find(batch_id);
  if (it == wal_pending_.end()) return;
  auto tok = it->second.tokens.find(index);
  if (tok == it->second.tokens.end()) return;
  if (tok->second.remaining_parts > 1) {
    --tok->second.remaining_parts;
    return;
  }
  it->second.tokens.erase(tok);
  if (it->second.tokens.empty()) wal_pending_.erase(it);
  std::string payload;
  PutU64(&payload, batch_id);
  PutU32(&payload, index);
  // Lazily buffered: the marker rides the next commit round for free. If
  // the append fails (or the process dies first), recovery replays the
  // token — at-least-once, resolved by action idempotence or dedup.
  (void)wal_->Append(WalRecordType::kProcessed, payload);
}

void TriggerManager::MaybeCheckpointWal() {
  if (wal_ == nullptr) return;
  if (wal_->RetainedBytes() <= options_.wal_checkpoint_bytes) return;
  Status s = CheckpointWal();
  if (!s.ok()) {
    TMAN_LOG(kWarn) << "wal checkpoint failed: " << s.ToString();
  }
}

Status TriggerManager::CheckpointWal() {
  if (wal_ == nullptr) {
    return Status::NotSupported("durable_wal is not enabled");
  }
  bool expected = false;
  if (!wal_checkpointing_.compare_exchange_strong(expected, true)) {
    return Status::OK();  // a checkpoint is already in flight
  }
  std::string payload;
  uint64_t end_lsn = 0;
  Status appended = Status::OK();
  {
    // Snapshot + append atomically w.r.t. SubmitDurableBatch (see there).
    std::unique_lock<std::mutex> lock(wal_mutex_);
    // Wait out in-flight group commits: a batch whose commit is still
    // undecided may yet fail and be erased (with its session seq rolled
    // back), and a checkpoint that listed it would durably re-stage it on
    // replay even though the client was told to resend.
    wal_inflight_cv_.wait(lock,
                          [this] { return wal_commits_in_flight_ == 0; });
    // The meta blob rides in every checkpoint, else truncation would drop
    // the kMeta record that carried it.
    PutLengthPrefixed(&payload, wal_meta_);
    PutU32(&payload, static_cast<uint32_t>(wal_sessions_.size()));
    for (const auto& [name, seq] : wal_sessions_) {
      PutLengthPrefixed(&payload, name);
      PutU64(&payload, seq);
    }
    PutU32(&payload, static_cast<uint32_t>(wal_pending_.size()));
    for (const auto& [batch_id, batch] : wal_pending_) {
      PutU64(&payload, batch_id);
      PutLengthPrefixed(&payload, batch.session);
      PutU32(&payload, static_cast<uint32_t>(batch.tokens.size()));
      for (const auto& [index, token] : batch.tokens) {
        PutU32(&payload, index);
        PutU64(&payload, token.seq);
        PutLengthPrefixed(&payload, token.serialized);
      }
    }
    auto lsn = wal_->Append(WalRecordType::kCheckpointV2, payload);
    if (lsn.ok()) {
      end_lsn = *lsn;
    } else {
      appended = lsn.status();
    }
  }
  Status result = appended;
  if (result.ok()) result = wal_->Commit(end_lsn);
  if (result.ok()) {
    // Everything before the checkpoint record is dead; a failed truncate
    // only costs log space, never correctness.
    Lsn record_start = end_lsn - payload.size() - kWalRecordOverhead;
    Status trunc = wal_->Truncate(record_start);
    if (!trunc.ok()) {
      TMAN_LOG(kWarn) << "wal truncate failed: " << trunc.ToString();
    }
  }
  wal_checkpointing_.store(false);
  return result;
}

Status TriggerManager::RecoverFromWal() {
  struct ReplayToken {
    uint64_t seq = 0;
    std::string bytes;
  };
  struct ReplayBatch {
    std::string session;
    std::map<uint32_t, ReplayToken> tokens;
  };
  std::map<std::string, uint64_t> sessions;
  std::map<uint64_t, ReplayBatch> pending;
  std::string meta;
  WalRecoveryInfo info;

  TMAN_RETURN_IF_ERROR(wal_->Replay([&](WalRecordType type,
                                        std::string_view payload,
                                        Lsn end_lsn) -> Status {
    size_t pos = 0;
    switch (type) {
      case WalRecordType::kBatch: {
        std::string_view session;
        uint64_t ack_seq = 0;
        uint32_t count = 0;
        if (!GetLengthPrefixed(payload, &pos, &session) ||
            !GetU64(payload, &pos, &ack_seq) ||
            !GetU32(payload, &pos, &count)) {
          return WalDecodeError();
        }
        std::string key(session);
        uint64_t prior = key.empty() ? 0 : sessions[key];
        for (uint32_t i = 0; i < count; ++i) {
          uint64_t seq = 0;
          std::string_view bytes;
          if (!GetU64(payload, &pos, &seq) ||
              !GetLengthPrefixed(payload, &pos, &bytes)) {
            return WalDecodeError();
          }
          // A commit round that failed ambiguously is retried by the
          // client, so the same stamped batch can appear twice in the
          // log; the session high-water mark identifies the duplicate.
          if (!key.empty() && seq != 0 && seq <= prior) continue;
          pending[end_lsn].tokens.emplace(i,
                                          ReplayToken{seq, std::string(bytes)});
        }
        pending[end_lsn].session = key;
        if (pending[end_lsn].tokens.empty()) pending.erase(end_lsn);
        if (!key.empty()) {
          uint64_t& high = sessions[key];
          if (ack_seq > high) high = ack_seq;
        }
        return Status::OK();
      }
      case WalRecordType::kProcessed: {
        uint64_t batch_id = 0;
        uint32_t index = 0;
        if (!GetU64(payload, &pos, &batch_id) ||
            !GetU32(payload, &pos, &index)) {
          return WalDecodeError();
        }
        auto it = pending.find(batch_id);
        if (it != pending.end()) {
          it->second.tokens.erase(index);
          if (it->second.tokens.empty()) pending.erase(it);
        }
        return Status::OK();
      }
      case WalRecordType::kMeta: {
        meta.assign(payload);
        return Status::OK();
      }
      case WalRecordType::kCheckpoint: {
        // Legacy layout: no meta blob, no per-token sequence. A log
        // written by the previous release can only end in records of
        // this shape; leave `meta` untouched (those logs carry none) and
        // default each token's seq to 0 (unstamped: replayed
        // at-least-once, the contract that release gave anyway).
        sessions.clear();
        pending.clear();
        ++info.checkpoints_seen;
        uint32_t session_count = 0;
        if (!GetU32(payload, &pos, &session_count)) return WalDecodeError();
        for (uint32_t i = 0; i < session_count; ++i) {
          std::string_view name;
          uint64_t seq = 0;
          if (!GetLengthPrefixed(payload, &pos, &name) ||
              !GetU64(payload, &pos, &seq)) {
            return WalDecodeError();
          }
          sessions[std::string(name)] = seq;
        }
        uint32_t batch_count = 0;
        if (!GetU32(payload, &pos, &batch_count)) return WalDecodeError();
        for (uint32_t b = 0; b < batch_count; ++b) {
          uint64_t batch_id = 0;
          std::string_view session;
          uint32_t token_count = 0;
          if (!GetU64(payload, &pos, &batch_id) ||
              !GetLengthPrefixed(payload, &pos, &session) ||
              !GetU32(payload, &pos, &token_count)) {
            return WalDecodeError();
          }
          ReplayBatch& batch = pending[batch_id];
          batch.session = std::string(session);
          for (uint32_t t = 0; t < token_count; ++t) {
            uint32_t index = 0;
            std::string_view bytes;
            if (!GetU32(payload, &pos, &index) ||
                !GetLengthPrefixed(payload, &pos, &bytes)) {
              return WalDecodeError();
            }
            batch.tokens.emplace(index, ReplayToken{0, std::string(bytes)});
          }
        }
        return Status::OK();
      }
      case WalRecordType::kCheckpointV2: {
        sessions.clear();
        pending.clear();
        ++info.checkpoints_seen;
        std::string_view meta_blob;
        if (!GetLengthPrefixed(payload, &pos, &meta_blob)) {
          return WalDecodeError();
        }
        meta.assign(meta_blob);
        uint32_t session_count = 0;
        if (!GetU32(payload, &pos, &session_count)) return WalDecodeError();
        for (uint32_t i = 0; i < session_count; ++i) {
          std::string_view name;
          uint64_t seq = 0;
          if (!GetLengthPrefixed(payload, &pos, &name) ||
              !GetU64(payload, &pos, &seq)) {
            return WalDecodeError();
          }
          sessions[std::string(name)] = seq;
        }
        uint32_t batch_count = 0;
        if (!GetU32(payload, &pos, &batch_count)) return WalDecodeError();
        for (uint32_t b = 0; b < batch_count; ++b) {
          uint64_t batch_id = 0;
          std::string_view session;
          uint32_t token_count = 0;
          if (!GetU64(payload, &pos, &batch_id) ||
              !GetLengthPrefixed(payload, &pos, &session) ||
              !GetU32(payload, &pos, &token_count)) {
            return WalDecodeError();
          }
          ReplayBatch& batch = pending[batch_id];
          batch.session = std::string(session);
          for (uint32_t t = 0; t < token_count; ++t) {
            uint32_t index = 0;
            uint64_t seq = 0;
            std::string_view bytes;
            if (!GetU32(payload, &pos, &index) ||
                !GetU64(payload, &pos, &seq) ||
                !GetLengthPrefixed(payload, &pos, &bytes)) {
              return WalDecodeError();
            }
            batch.tokens.emplace(index, ReplayToken{seq, std::string(bytes)});
          }
        }
        return Status::OK();
      }
    }
    return Status::Corruption("wal: unknown record type");
  }));

  // The WAL is authoritative over the persistent staging queue: whatever
  // the queue still holds duplicates un-marked tokens the replay below
  // re-stages, so repair a torn tail and drain it.
  if (options_.persistent_queue && update_queue_ != nullptr) {
    auto torn = update_queue_->RecoverTorn();
    if (!torn.ok()) return torn.status();
    for (;;) {
      auto record = update_queue_->Dequeue();
      if (!record.ok()) {
        if (record.status().IsNotFound()) break;
        return record.status();
      }
    }
  }

  // Install the recovered state and re-stage every surviving token.
  const uint32_t parts = std::max(1u, options_.condition_partitions);
  std::vector<Task> tasks;
  {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    wal_sessions_ = sessions;
    wal_meta_ = meta;
    for (const auto& [batch_id, batch] : pending) {
      PendingBatch& out = wal_pending_[batch_id];
      out.session = batch.session;
      for (const auto& [index, token] : batch.tokens) {
        out.tokens[index] = PendingToken{token.bytes, token.seq, parts, false};
      }
    }
  }
  for (const auto& [batch_id, batch] : pending) {
    for (const auto& [index, token] : batch.tokens) {
      TMAN_ASSIGN_OR_RETURN(UpdateDescriptor descriptor,
                            UpdateDescriptor::Deserialize(token.bytes));
      AppendWalTokenTasks(descriptor, batch_id, index, &tasks);
      ++info.tokens_replayed;
    }
    ++info.batches_replayed;
  }
  info.sessions_restored = sessions.size();
  task_queue_.PushBatch(std::move(tasks));
  last_recovery_ = info;
  return Status::OK();
}

uint64_t TriggerManager::RecoveredSessionSeq(
    const std::string& session) const {
  std::lock_guard<std::mutex> lock(wal_mutex_);
  auto it = wal_sessions_.find(session);
  return it == wal_sessions_.end() ? 0 : it->second;
}

uint64_t TriggerManager::WalPendingTokens() const {
  std::lock_guard<std::mutex> lock(wal_mutex_);
  uint64_t n = 0;
  for (const auto& [batch_id, batch] : wal_pending_) {
    n += batch.tokens.size();
  }
  return n;
}

uint64_t TriggerManager::FenceWalSessions(
    const std::map<std::string, uint64_t>& fences) {
  std::lock_guard<std::mutex> lock(wal_mutex_);
  // A fence is one-shot: it names the re-route point of ONE death
  // verdict, and everything staged on the session up to the moment the
  // fence first arrives (recovered from the dead incarnation's WAL, or
  // staged live from the dead channel's still-buffered sends) with a seq
  // above it was re-routed elsewhere and must not fire here. Work staged
  // AFTER that first application is post-rejoin traffic at higher seqs —
  // but fences ride every subsequent map install (and survive router
  // restarts), so re-applying the same fence point later would swallow
  // acked live tokens that nobody re-routed. Remember what was applied
  // and only fence forward progress; a reboot clears the memory, which
  // is exactly right — recovered tokens need the fence again.
  std::map<std::string, uint64_t> fresh;
  for (const auto& [session, seq] : fences) {
    auto applied = wal_fences_applied_.find(session);
    if (applied != wal_fences_applied_.end() && applied->second >= seq) {
      continue;
    }
    fresh[session] = seq;
    wal_fences_applied_[session] = seq;
  }
  if (fresh.empty()) return 0;
  uint64_t fenced = 0;
  for (auto& [batch_id, batch] : wal_pending_) {
    auto fence = fresh.find(batch.session);
    if (fence == fresh.end()) continue;
    for (auto& [index, token] : batch.tokens) {
      if (token.seq != 0 && token.seq > fence->second && !token.fenced) {
        token.fenced = true;
        ++fenced;
      }
    }
  }
  return fenced;
}

bool TriggerManager::IsWalTokenFenced(uint64_t batch_id,
                                      uint32_t index) const {
  std::lock_guard<std::mutex> lock(wal_mutex_);
  auto it = wal_pending_.find(batch_id);
  if (it == wal_pending_.end()) return false;
  auto tok = it->second.tokens.find(index);
  return tok != it->second.tokens.end() && tok->second.fenced;
}

Status TriggerManager::SetDurableMeta(std::string_view blob) {
  if (wal_ == nullptr) {
    return Status::NotSupported("durable_wal is not enabled");
  }
  uint64_t lsn = 0;
  {
    std::lock_guard<std::mutex> lock(wal_mutex_);
    auto appended = wal_->Append(WalRecordType::kMeta, blob);
    if (!appended.ok()) return appended.status();
    lsn = *appended;
    wal_meta_.assign(blob);
  }
  return wal_->Commit(lsn);
}

std::string TriggerManager::RecoveredMeta() const {
  std::lock_guard<std::mutex> lock(wal_mutex_);
  return wal_meta_;
}

Status TriggerManager::ProcessPending() {
  // Batched pop: one shard-lock acquisition claims a run of tasks, the
  // same amortization the driver pool gets from DriverConfig::pop_batch.
  std::vector<Task> tasks;
  const size_t chunk = std::max<uint32_t>(1, options_.batch_size);
  for (;;) {
    tasks.clear();
    if (task_queue_.PopBatch(&tasks, chunk) == 0) break;
    for (Task& task : tasks) {
      Status s = task.work();
      task_queue_.MarkDone();
      if (!s.ok()) {
        TMAN_LOG(kWarn) << "task failed: " << s.ToString();
      }
    }
  }
  return Status::OK();
}

Status TriggerManager::Start() {
  drivers_->Start();
  if (options_.adaptive && !adapt_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(adapt_thread_mutex_);
      adapt_stop_ = false;
    }
    adapt_thread_ = std::thread([this]() {
      std::unique_lock<std::mutex> lock(adapt_thread_mutex_);
      while (!adapt_stop_) {
        adapt_thread_cv_.wait_for(lock, options_.adapt_interval);
        if (adapt_stop_) break;
        if (!adaptive_enabled()) continue;
        lock.unlock();
        RunAdaptationRound();
        lock.lock();
      }
    });
  }
  return Status::OK();
}

void TriggerManager::Stop() {
  if (adapt_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(adapt_thread_mutex_);
      adapt_stop_ = true;
    }
    adapt_thread_cv_.notify_all();
    adapt_thread_.join();
  }
  if (drivers_ != nullptr) drivers_->Stop();
}

AdaptRoundReport TriggerManager::RunAdaptationRound() {
  std::lock_guard<std::mutex> lock(adapt_run_mutex_);
  AdaptRoundReport report = reopt_->RunOnce();
  adapt_rounds_.fetch_add(1, std::memory_order_relaxed);
  return report;
}

void TriggerManager::Drain() { task_queue_.WaitIdle(); }

bool TriggerManager::IsEnabled(TriggerId id) const {
  std::shared_lock lock(meta_mutex_);
  auto it = trigger_meta_.find(id);
  if (it == trigger_meta_.end()) return false;
  if (!it->second.enabled) return false;
  auto sit = set_enabled_.find(it->second.ts_id);
  return sit == set_enabled_.end() || sit->second;
}

Status TriggerManager::MaintainToken(const UpdateDescriptor& token,
                                     uint32_t partition,
                                     uint32_t num_partitions) {
  // Maintenance pass (only when some trigger on this source keeps state:
  // stored alpha memories of multi-variable triggers, or aggregate
  // groups). Matching here ignores event opcodes — state must track the
  // selection result regardless of which events fire the trigger.
  bool need_maintenance = false;
  {
    std::shared_lock lock(meta_mutex_);
    auto it = maintenance_triggers_.find(token.data_source);
    need_maintenance = it != maintenance_triggers_.end() && it->second > 0;
  }
  if (need_maintenance) {
    auto maintain = [&](const Tuple& tuple, bool add) -> Status {
      Status inner = Status::OK();
      TMAN_RETURN_IF_ERROR(pindex_->MatchMaintenance(
          token.data_source, tuple, partition, num_partitions,
          [&](const PredicateMatch& m) {
            if (!inner.ok()) return;
            bool multi = false;
            bool is_aggregate = false;
            {
              std::shared_lock lock(meta_mutex_);
              auto it = trigger_meta_.find(m.trigger_id);
              if (it != trigger_meta_.end()) {
                multi = it->second.multi_variable;
                is_aggregate = it->second.is_aggregate;
              }
            }
            if (!multi && !is_aggregate) return;
            auto pinned = cache_->Pin(m.trigger_id);
            if (!pinned.ok()) {
              inner = pinned.status();
              return;
            }
            if (is_aggregate) {
              std::shared_ptr<GroupByEvaluator> agg;
              {
                std::shared_lock lock(meta_mutex_);
                auto ait = aggregates_.find(m.trigger_id);
                if (ait != aggregates_.end()) agg = ait->second;
              }
              if (agg != nullptr && IsEnabled(m.trigger_id)) {
                Status s = RunAggregateDelta(agg, *pinned, token, tuple, add,
                                             m.next_node);
                if (!s.ok()) inner = s;
              }
              return;
            }
            Status s = add
                           ? (*pinned)->network->AddTuple(m.next_node, tuple)
                           : (*pinned)->network->RemoveTuple(m.next_node,
                                                             tuple);
            if (!s.ok()) inner = s;
          }));
      return inner;
    };
    if (token.old_tuple.has_value() &&
        (token.op == OpCode::kDelete || token.op == OpCode::kUpdate)) {
      TMAN_RETURN_IF_ERROR(maintain(*token.old_tuple, /*add=*/false));
    }
    if (token.new_tuple.has_value() &&
        (token.op == OpCode::kInsert || token.op == OpCode::kUpdate)) {
      TMAN_RETURN_IF_ERROR(maintain(*token.new_tuple, /*add=*/true));
    }
  }
  return Status::OK();
}

Status TriggerManager::ProcessToken(const UpdateDescriptor& token,
                                    uint32_t partition,
                                    uint32_t num_partitions) {
  if (partition == 0) {
    tokens_processed_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    StageTimer maintain_timer(&stage_metrics_, Stage::kMaintain, 1);
    TMAN_RETURN_IF_ERROR(MaintainToken(token, partition, num_partitions));
  }

  // Fire matching: event condition + selection predicate through the
  // predicate index, then joins, then actions. (The kMatch span covers
  // the whole pass; firing work inside it is also timed separately as
  // kFire sub-spans.)
  StageTimer match_timer(&stage_metrics_, Stage::kMatch, 1);
  Status inner = Status::OK();
  TMAN_RETURN_IF_ERROR(pindex_->MatchPartitioned(
      token, partition, num_partitions, [&](const PredicateMatch& m) {
        if (!inner.ok()) return;
        if (!IsEnabled(m.trigger_id)) return;
        auto pinned = cache_->Pin(m.trigger_id);
        if (!pinned.ok()) {
          inner = pinned.status();
          return;
        }
        Status s = RunFiring(m, *pinned, token);
        if (!s.ok()) inner = s;
      }));
  return inner;
}

Status TriggerManager::ProcessTokenBatch(
    const std::vector<UpdateDescriptor>& tokens, uint32_t partition,
    uint32_t num_partitions) {
  if (tokens.empty()) return Status::OK();
  if (partition == 0) {
    tokens_processed_.fetch_add(tokens.size(), std::memory_order_relaxed);
  }

  // Maintenance stays per token and in submission order: alpha-memory and
  // aggregate-group upkeep is stateful, so reordering across tokens would
  // change join results. A token whose maintenance fails is excluded from
  // the fire pass (the scalar pipeline would have returned before
  // matching it) without stopping its batch-mates.
  std::vector<Status> lane_status(tokens.size());
  bool any_failed = false;
  {
    StageTimer maintain_timer(&stage_metrics_, Stage::kMaintain,
                              tokens.size());
    for (size_t i = 0; i < tokens.size(); ++i) {
      lane_status[i] = MaintainToken(tokens[i], partition, num_partitions);
      if (!lane_status[i].ok()) any_failed = true;
    }
  }

  const std::vector<UpdateDescriptor>* match_tokens = &tokens;
  std::vector<UpdateDescriptor> filtered;
  std::vector<uint32_t> lane_map;  // filtered lane -> original index
  if (any_failed) {
    for (uint32_t i = 0; i < tokens.size(); ++i) {
      if (!lane_status[i].ok()) continue;
      filtered.push_back(tokens[i]);
      lane_map.push_back(i);
    }
    match_tokens = &filtered;
  }

  // One batched fire pass for the whole group: probes hashed per
  // (stripe, source) group, rest-of-predicates through the batched VM.
  if (!match_tokens->empty()) {
    StageTimer match_timer(&stage_metrics_, Stage::kMatch,
                           match_tokens->size());
    std::vector<Status> match_status;
    (void)pindex_->MatchBatch(
        *match_tokens, partition, num_partitions,
        [&](size_t lane, const PredicateMatch& m) {
          size_t orig = any_failed ? lane_map[lane] : lane;
          if (!lane_status[orig].ok()) return;
          if (!IsEnabled(m.trigger_id)) return;
          auto pinned = cache_->Pin(m.trigger_id);
          if (!pinned.ok()) {
            lane_status[orig] = pinned.status();
            return;
          }
          Status s = RunFiring(m, *pinned, tokens[orig]);
          if (!s.ok()) lane_status[orig] = s;
        },
        &match_status);
    for (size_t lane = 0; lane < match_status.size(); ++lane) {
      size_t orig = any_failed ? lane_map[lane] : lane;
      if (lane_status[orig].ok() && !match_status[lane].ok()) {
        lane_status[orig] = match_status[lane];
      }
    }
  }

  for (const Status& s : lane_status) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status TriggerManager::RunFiring(const PredicateMatch& match,
                                 const TriggerHandle& trigger,
                                 const UpdateDescriptor& token) {
  // Aggregate triggers already consumed the token in the maintenance
  // pass (their firing is an edge of the having condition, not a join
  // result); nothing to do on the fire path.
  {
    std::shared_lock lock(meta_mutex_);
    if (aggregates_.count(trigger->id) > 0) return Status::OK();
  }
  StageTimer fire_timer(&stage_metrics_, Stage::kFire, 0);
  uint64_t fired = 0;
  return trigger->network->MatchJoins(
      match.next_node, token.EffectiveTuple(),
      [&](const std::vector<Tuple>& bindings) {
        rule_firings_.fetch_add(1, std::memory_order_relaxed);
        fire_timer.set_items(++fired);
        ActionContext ctx;
        ctx.trigger = trigger.get();
        ctx.bindings = bindings;
        ctx.token = token;
        ctx.arrival_node = match.next_node;
        if (options_.concurrent_actions) {
          // Rule action concurrency (§6): actions run as their own tasks.
          Task task;
          task.kind = TaskKind::kRunAction;
          TriggerHandle keep_alive = trigger;
          auto ctx_ptr = std::make_shared<ActionContext>(std::move(ctx));
          ctx_ptr->trigger = keep_alive.get();
          task.work = [this, keep_alive, ctx_ptr]() {
            return actions_->Execute(*ctx_ptr);
          };
          task_queue_.Push(std::move(task));
          return;
        }
        Status s = actions_->Execute(ctx);
        if (!s.ok()) {
          TMAN_LOG(kWarn) << "action of trigger " << trigger->name
                          << " failed: " << s.ToString();
        }
      });
}

Status TriggerManager::RunAggregateDelta(
    const std::shared_ptr<GroupByEvaluator>& agg, const TriggerHandle& trigger,
    const UpdateDescriptor& token, const Tuple& tuple, bool add,
    NetworkNodeId arrival_node) {
  TMAN_ASSIGN_OR_RETURN(auto firings, agg->ApplyDelta(tuple, add));
  for (const GroupByEvaluator::Firing& firing : firings) {
    rule_firings_.fetch_add(1, std::memory_order_relaxed);
    ActionContext ctx;
    ctx.trigger = trigger.get();
    ctx.bindings = {tuple};
    ctx.token = token;
    ctx.arrival_node = arrival_node;
    // Substitute the group's aggregate values into the action arguments.
    ActionSpec spec = trigger->cmd.action;
    for (size_t i = 0; i < spec.event_args.size(); ++i) {
      TMAN_ASSIGN_OR_RETURN(spec.event_args[i],
                            agg->InstantiateActionArg(i, firing));
    }
    Status s = actions_->ExecuteSpec(ctx, spec);
    if (!s.ok()) {
      TMAN_LOG(kWarn) << "aggregate action of trigger " << trigger->name
                      << " failed: " << s.ToString();
    }
  }
  return Status::OK();
}

Result<TriggerHandle> TriggerManager::LoadTrigger(TriggerId id) {
  TMAN_ASSIGN_OR_RETURN(auto row, catalog_->GetTriggerById(id));
  if (!row.has_value()) {
    return Status::NotFound("trigger " + std::to_string(id) +
                            " not in catalog");
  }
  TMAN_ASSIGN_OR_RETURN(Command cmd, ParseCommand(row->trigger_text));
  auto* create = std::get_if<CreateTriggerCmd>(&cmd);
  if (create == nullptr) {
    return Status::Corruption("catalog trigger_text is not create trigger");
  }
  TMAN_ASSIGN_OR_RETURN(std::shared_ptr<TriggerRuntime> runtime,
                        BuildRuntime(*create, id, row->ts_id));
  // Re-prime stored memories from local tables. Stream-fed stored
  // memories restart empty after eviction — replaying a stream is out of
  // scope (the paper's persistent queue covers staged, not consumed,
  // updates).
  TMAN_RETURN_IF_ERROR(runtime->network->Prime());
  return TriggerHandle(runtime);
}

Result<TriggerHandle> TriggerManager::PinTrigger(const std::string& name) {
  TriggerId id = 0;
  {
    std::shared_lock lock(meta_mutex_);
    auto it = trigger_by_name_.find(ToLower(name));
    if (it == trigger_by_name_.end()) {
      return Status::NotFound("no such trigger: " + name);
    }
    id = it->second;
  }
  return cache_->Pin(id);
}

TriggerManagerStats TriggerManager::stats() const {
  TriggerManagerStats st;
  st.updates_submitted = updates_submitted_.load(std::memory_order_relaxed);
  st.tokens_processed = tokens_processed_.load(std::memory_order_relaxed);
  st.rule_firings = rule_firings_.load(std::memory_order_relaxed);
  st.actions = actions_->stats();
  st.cache = cache_->stats();
  st.predicates = pindex_->stats();
  if (wal_ != nullptr) {
    st.wal = wal_->stats();
    st.wal_pending_tokens = WalPendingTokens();
  }
  st.stages = stage_metrics_.Snapshot();
  st.stages.queue_depth = task_queue_.size();
  st.stages.queue_in_flight = task_queue_.in_flight();
  st.adapt_rounds = adapt_rounds_.load(std::memory_order_relaxed);
  st.adapt_switches = reopt_->total_switches();
  st.adapt_events = adapt_log_.total();
  return st;
}

std::string TriggerManager::StatsText() const {
  TriggerManagerStats st = stats();
  std::string out;
  out += "submitted=" + std::to_string(st.updates_submitted) +
         " processed=" + std::to_string(st.tokens_processed) +
         " firings=" + std::to_string(st.rule_firings) + "\n";
  out += "signatures=" + std::to_string(st.predicates.num_signatures) +
         " predicates=" + std::to_string(st.predicates.num_predicates) +
         " matches=" + std::to_string(st.predicates.matches_emitted) + "\n";
  out += st.stages.ToString();
  out += "adapt: rounds=" + std::to_string(st.adapt_rounds) +
         " switches=" + std::to_string(st.adapt_switches) +
         " events=" + std::to_string(st.adapt_events) + "\n";
  // Per-signature runtime stats, the raw feed of the re-optimizer.
  for (const SignatureStatsReport& r : pindex_->SignatureStats()) {
    const SignatureRuntimeStats& s = r.stats;
    double selectivity =
        s.probes > 0 ? static_cast<double>(s.matches) / s.probes : 0.0;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "sig %llu src=%u org=%s size=%zu probes=%llu "
                  "matches=%llu sel=%.4f switches=%u %s\n",
                  static_cast<unsigned long long>(s.sig_id),
                  static_cast<unsigned>(r.source),
                  std::string(OrgTypeName(s.org)).c_str(), s.class_size,
                  static_cast<unsigned long long>(s.probes),
                  static_cast<unsigned long long>(s.matches), selectivity,
                  s.org_switches, s.description.c_str());
    out += line;
  }
  return out;
}

Result<std::string> TriggerManager::AdaptCommand(std::string_view args) {
  std::string sub = ToLower(std::string(Trim(args)));
  if (sub.empty() || sub == "status") {
    std::string out;
    out += std::string("adaptive=") + (options_.adaptive ? "on" : "off") +
           " gate=" + (adaptive_enabled() ? "open" : "closed") +
           " rounds=" + std::to_string(adapt_rounds_.load()) +
           " switches=" + std::to_string(reopt_->total_switches()) +
           " events=" + std::to_string(adapt_log_.total()) + "\n";
    const AdaptPolicy& p = reopt_->policy();
    out += "policy: min_probes=" + std::to_string(p.min_probes) +
           " min_gain=" + std::to_string(p.min_gain_ratio) +
           " cooldown=" + std::to_string(p.cooldown_rounds) + "\n";
    return out;
  }
  if (sub == "run") {
    AdaptRoundReport report = RunAdaptationRound();
    return report.ToString();
  }
  if (sub == "log") {
    std::vector<AdaptationRecord> tail = adapt_log_.Tail(32);
    if (tail.empty()) return std::string("adaptation log empty");
    std::string out;
    for (const AdaptationRecord& rec : tail) out += rec.ToString() + "\n";
    return out;
  }
  if (sub == "on") {
    set_adaptive_enabled(true);
    return std::string("adaptation enabled");
  }
  if (sub == "off") {
    set_adaptive_enabled(false);
    return std::string("adaptation disabled");
  }
  return Status::InvalidArgument(
      "usage: adapt [status|run|log|on|off]");
}

}  // namespace tman
