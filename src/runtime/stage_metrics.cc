#include "runtime/stage_metrics.h"

#include <sstream>

namespace tman {

std::string_view StageName(Stage stage) {
  switch (stage) {
    case Stage::kIngest:
      return "ingest";
    case Stage::kMaintain:
      return "maintain";
    case Stage::kMatch:
      return "match";
    case Stage::kFire:
      return "fire";
  }
  return "?";
}

StageMetricsSnapshot StageMetrics::Snapshot() const {
  StageMetricsSnapshot snap;
  for (int i = 0; i < kNumStages; ++i) {
    const Counters& c = counters_[i];
    StageSnapshot& s = snap.stages[i];
    s.batches = c.batches.Read();
    s.items = c.items.Read();
    s.total_ns = c.total_ns.Read();
    s.max_ns = c.max_ns.load(std::memory_order_relaxed);
  }
  return snap;
}

std::string StageMetricsSnapshot::ToString() const {
  std::ostringstream os;
  os << "stage        batches      items   mean_us    max_us\n";
  for (int i = 0; i < kNumStages; ++i) {
    const StageSnapshot& s = stages[i];
    double mean_us =
        s.batches == 0 ? 0.0
                       : static_cast<double>(s.total_ns) /
                             static_cast<double>(s.batches) / 1000.0;
    char line[128];
    std::snprintf(line, sizeof(line), "%-10s %10llu %10llu %9.1f %9.1f\n",
                  std::string(StageName(static_cast<Stage>(i))).c_str(),
                  static_cast<unsigned long long>(s.batches),
                  static_cast<unsigned long long>(s.items), mean_us,
                  static_cast<double>(s.max_ns) / 1000.0);
    os << line;
  }
  os << "queue depth=" << queue_depth << " in_flight=" << queue_in_flight
     << "\n";
  return os.str();
}

}  // namespace tman
