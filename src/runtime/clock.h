#ifndef TRIGGERMAN_RUNTIME_CLOCK_H_
#define TRIGGERMAN_RUNTIME_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace tman {

/// Time source seam for the runtime (§6's THRESHOLD / period T logic).
/// Production code uses the process-wide SystemClock; deterministic tests
/// substitute a VirtualClock so time-dependent control flow (THRESHOLD
/// expiry mid-batch, driver wakeups) is driven explicitly instead of by
/// the wall clock.
class Clock {
 public:
  using Duration = std::chrono::nanoseconds;
  using TimePoint = std::chrono::time_point<std::chrono::steady_clock>;

  virtual ~Clock() = default;

  /// Current time. VirtualClock implementations may advance per call.
  virtual TimePoint Now() = 0;

  /// Cooperative yield point between tasks (the paper's mi_yield).
  virtual void Yield() = 0;

  /// Process-wide real (steady) clock.
  static Clock* Real();
};

/// The real clock: steady_clock time, std::this_thread::yield.
class SystemClock final : public Clock {
 public:
  TimePoint Now() override;
  void Yield() override;
};

/// Manually advanced clock for deterministic tests. Starts at an
/// arbitrary fixed epoch; Now() optionally auto-advances by a fixed step
/// per call so loops like TmanTest's THRESHOLD check consume virtual time
/// at a known rate (e.g. auto_advance = 100ms with THRESHOLD = 250ms
/// checks elapsed time at 100/200/300ms and so admits exactly two
/// tasks). Thread-safe.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(Duration auto_advance = Duration::zero())
      : auto_advance_ns_(auto_advance.count()) {}

  TimePoint Now() override {
    int64_t ns = now_ns_.fetch_add(auto_advance_ns_,
                                   std::memory_order_relaxed);
    return TimePoint(Duration(ns));
  }

  void Yield() override {}

  /// Moves virtual time forward by `d`.
  void Advance(Duration d) {
    now_ns_.fetch_add(d.count(), std::memory_order_relaxed);
  }

  /// Virtual nanoseconds since construction.
  int64_t elapsed_ns() const {
    return now_ns_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> now_ns_{0};
  const int64_t auto_advance_ns_;
};

}  // namespace tman

#endif  // TRIGGERMAN_RUNTIME_CLOCK_H_
