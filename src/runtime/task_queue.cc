#include "runtime/task_queue.h"

#include <algorithm>
#include <cassert>
#include <thread>

namespace tman {

namespace {

/// Monotonic slot handed to each thread on its first queue access; the
/// home shard is the slot modulo the shard count, so driver threads (and
/// concurrent producers) spread round-robin across shards.
uint32_t ThreadSlot() {
  static std::atomic<uint32_t> next_slot{0};
  thread_local uint32_t slot = next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace

int TaskKindIndex(TaskKind kind) {
  int index = static_cast<int>(kind) - 1;  // TaskKind values start at 1
  assert(index >= 0 && index < kNumTaskKinds && "unknown TaskKind");
  return index;
}

std::string_view TaskKindName(TaskKind kind) {
  static constexpr std::string_view kNames[kNumTaskKinds] = {
      "process-token",            // kProcessToken
      "run-action",               // kRunAction
      "process-token-partition",  // kProcessTokenPartition
      "run-action-set",           // kRunActionSet
  };
  int index = static_cast<int>(kind) - 1;
  if (index < 0 || index >= kNumTaskKinds) return "?";
  return kNames[index];
}

TaskQueue::TaskQueue(uint32_t num_shards) {
  if (num_shards == 0) {
    uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
    num_shards = std::clamp(hw, 4u, 32u);
  }
  shards_.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

uint32_t TaskQueue::home_shard() const {
  return ThreadSlot() % static_cast<uint32_t>(shards_.size());
}

void TaskQueue::NoteQueued(size_t added) {
  uint64_t now =
      static_cast<uint64_t>(size_.fetch_add(added, std::memory_order_seq_cst) +
                            added);
  uint64_t seen = max_size_.load(std::memory_order_relaxed);
  while (now > seen &&
         !max_size_.compare_exchange_weak(seen, now,
                                          std::memory_order_relaxed)) {
  }
}

void TaskQueue::WakeSleepers(size_t pushed) {
  if (waiters_.load(std::memory_order_seq_cst) == 0) return;
  { std::lock_guard<std::mutex> lock(sleep_mutex_); }
  if (pushed == 1) {
    sleep_cv_.notify_one();
  } else {
    sleep_cv_.notify_all();
  }
}

void TaskQueue::Push(Task task) { PushToShard(home_shard(), std::move(task)); }

void TaskQueue::PushToShard(uint32_t shard_index, Task task) {
  Shard& shard = *shards_[shard_index % shards_.size()];
  TaskKind kind = task.kind;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.pushed.fetch_add(1, std::memory_order_relaxed);
    shard.per_kind[TaskKindIndex(kind)].fetch_add(1,
                                                  std::memory_order_relaxed);
    shard.tasks.push_back(std::move(task));
    shard.depth.store(shard.tasks.size(), std::memory_order_relaxed);
  }
  NoteQueued(1);
  WakeSleepers(1);
  Observe("push:" + std::string(TaskKindName(kind)));
}

void TaskQueue::PushBatch(std::vector<Task> tasks) {
  PushBatchToShard(home_shard(), std::move(tasks));
}

void TaskQueue::PushBatchToShard(uint32_t shard_index,
                                 std::vector<Task> tasks) {
  if (tasks.empty()) return;
  Shard& shard = *shards_[shard_index % shards_.size()];
  std::vector<TaskKind> kinds;
  kinds.reserve(tasks.size());
  for (const Task& t : tasks) kinds.push_back(t.kind);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.pushed.fetch_add(tasks.size(), std::memory_order_relaxed);
    for (TaskKind kind : kinds) {
      shard.per_kind[TaskKindIndex(kind)].fetch_add(
          1, std::memory_order_relaxed);
    }
    for (Task& t : tasks) shard.tasks.push_back(std::move(t));
    shard.depth.store(shard.tasks.size(), std::memory_order_relaxed);
  }
  NoteQueued(kinds.size());
  WakeSleepers(kinds.size());
  if (observer_) {
    for (TaskKind kind : kinds) {
      Observe("push:" + std::string(TaskKindName(kind)));
    }
  }
}

bool TaskQueue::TryPop(Task* task) {
  return TryPopFromShard(home_shard(), task);
}

bool TaskQueue::TryPopFromShard(uint32_t home, Task* task) {
  const uint32_t n = static_cast<uint32_t>(shards_.size());
  home %= n;
  if (paused_.load(std::memory_order_acquire)) return false;
  // Cheap emptiness probe before touching any lock.
  if (size_.load(std::memory_order_acquire) == 0) return false;
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t index = (home + i) % n;
    Shard& shard = *shards_[index];
    bool stolen = i > 0;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (shard.tasks.empty()) continue;
      *task = std::move(shard.tasks.front());
      shard.tasks.pop_front();
      shard.depth.store(shard.tasks.size(), std::memory_order_relaxed);
      shard.popped.fetch_add(1, std::memory_order_relaxed);
      if (stolen) shard.steals.fetch_add(1, std::memory_order_relaxed);
    }
    // Keep size + in_flight conservatively overlapping: the task is
    // counted in flight before it stops counting as queued, so WaitIdle
    // can never observe a vanished task.
    in_flight_.fetch_add(1, std::memory_order_seq_cst);
    size_.fetch_sub(1, std::memory_order_seq_cst);
    Observe((stolen ? "steal:" : "pop:") +
            std::string(TaskKindName(task->kind)));
    return true;
  }
  return false;
}

size_t TaskQueue::PopBatch(std::vector<Task>* out, size_t max_tasks) {
  return PopBatchFromShard(home_shard(), out, max_tasks);
}

size_t TaskQueue::PopBatchFromShard(uint32_t home, std::vector<Task>* out,
                                    size_t max_tasks) {
  if (max_tasks == 0) return 0;
  const uint32_t n = static_cast<uint32_t>(shards_.size());
  home %= n;
  if (paused_.load(std::memory_order_acquire)) return 0;
  // Cheap emptiness probe before touching any lock.
  if (size_.load(std::memory_order_acquire) == 0) return 0;
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t index = (home + i) % n;
    Shard& shard = *shards_[index];
    bool stolen = i > 0;
    size_t taken = 0;
    const size_t first = out->size();
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      size_t available = shard.tasks.size();
      if (available == 0) continue;
      size_t take = std::min(available, max_tasks);
      if (stolen) {
        // Steal-aware fallback: leave the owner at least half its queue.
        take = std::min(take, std::max<size_t>(1, available / 2));
      }
      for (size_t t = 0; t < take; ++t) {
        out->push_back(std::move(shard.tasks.front()));
        shard.tasks.pop_front();
      }
      shard.depth.store(shard.tasks.size(), std::memory_order_relaxed);
      shard.popped.fetch_add(take, std::memory_order_relaxed);
      if (stolen) shard.steals.fetch_add(take, std::memory_order_relaxed);
      shard.batch_pops.fetch_add(1, std::memory_order_relaxed);
      shard.batch_pop_tasks.fetch_add(take, std::memory_order_relaxed);
      taken = take;
    }
    // Same conservative overlap as TryPop: everything taken is counted in
    // flight before it stops counting as queued, so WaitIdle can never
    // observe a vanished task.
    in_flight_.fetch_add(taken, std::memory_order_seq_cst);
    size_.fetch_sub(taken, std::memory_order_seq_cst);
    if (observer_) {
      for (size_t t = 0; t < taken; ++t) {
        Observe((stolen ? "steal:" : "pop:") +
                std::string(TaskKindName((*out)[first + t].kind)));
      }
    }
    return taken;
  }
  return 0;
}

bool TaskQueue::WaitPop(Task* task, std::chrono::milliseconds timeout) {
  const uint32_t home = home_shard();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (TryPopFromShard(home, task)) return true;
    if (closed_.load(std::memory_order_acquire)) return false;
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    bool signaled = sleep_cv_.wait_until(lock, deadline, [this] {
      return (!paused_.load(std::memory_order_acquire) &&
              size_.load(std::memory_order_seq_cst) > 0) ||
             closed_.load(std::memory_order_acquire);
    });
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
    lock.unlock();
    if (!signaled) {
      // Timed out: one final non-blocking attempt (work may have landed
      // exactly at the deadline).
      return TryPopFromShard(home, task);
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return TryPopFromShard(home, task);
    }
    // Woken: loop and race the other drivers for the task.
  }
}

void TaskQueue::MarkDone() {
  // Tolerates a spurious MarkDone (no matching pop) like the previous
  // implementation did: the counter never underflows.
  size_t before = in_flight_.load(std::memory_order_seq_cst);
  do {
    if (before == 0) return;
  } while (!in_flight_.compare_exchange_weak(before, before - 1,
                                             std::memory_order_seq_cst));
  if (before == 1 && size_.load(std::memory_order_seq_cst) == 0) {
    NotifyIfIdle();
  }
  Observe("done");
}

void TaskQueue::NotifyIfIdle() {
  { std::lock_guard<std::mutex> lock(idle_mutex_); }
  idle_cv_.notify_all();
}

void TaskQueue::WaitIdle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [this] {
    return (size_.load(std::memory_order_seq_cst) == 0 &&
            in_flight_.load(std::memory_order_seq_cst) == 0) ||
           closed_.load(std::memory_order_acquire);
  });
}

void TaskQueue::Pause() {
  paused_.store(true, std::memory_order_release);
  Observe("pause");
}

void TaskQueue::Resume() {
  if (!paused_.exchange(false, std::memory_order_acq_rel)) return;
  // Same lost-wakeup guard as WakeSleepers: a driver may have evaluated
  // the paused predicate but not yet blocked.
  { std::lock_guard<std::mutex> lock(sleep_mutex_); }
  sleep_cv_.notify_all();
  Observe("resume");
}

void TaskQueue::Close() {
  closed_.store(true, std::memory_order_release);
  { std::lock_guard<std::mutex> lock(sleep_mutex_); }
  sleep_cv_.notify_all();
  { std::lock_guard<std::mutex> lock(idle_mutex_); }
  idle_cv_.notify_all();
  Observe("close");
}

TaskQueueStats TaskQueue::stats() const {
  // Lock-free aggregation: each counter is one atomic load, so a stats
  // poll never blocks a pushing or popping driver thread.
  TaskQueueStats stats;
  for (const auto& shard : shards_) {
    stats.pushed += shard->pushed.load(std::memory_order_relaxed);
    stats.popped += shard->popped.load(std::memory_order_relaxed);
    stats.steals += shard->steals.load(std::memory_order_relaxed);
    stats.batch_pops += shard->batch_pops.load(std::memory_order_relaxed);
    stats.batch_pop_tasks +=
        shard->batch_pop_tasks.load(std::memory_order_relaxed);
    for (int k = 0; k < kNumTaskKinds; ++k) {
      stats.per_kind[k] += shard->per_kind[k].load(std::memory_order_relaxed);
    }
  }
  stats.max_size = max_size_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<TaskQueueShardStats> TaskQueue::shard_stats() const {
  std::vector<TaskQueueShardStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    TaskQueueShardStats s;
    s.depth = shard->depth.load(std::memory_order_relaxed);
    s.pushed = shard->pushed.load(std::memory_order_relaxed);
    s.popped = shard->popped.load(std::memory_order_relaxed);
    s.steals = shard->steals.load(std::memory_order_relaxed);
    s.batch_pops = shard->batch_pops.load(std::memory_order_relaxed);
    s.batch_pop_tasks =
        shard->batch_pop_tasks.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

}  // namespace tman
