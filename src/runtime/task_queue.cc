#include "runtime/task_queue.h"

namespace tman {

std::string_view TaskKindName(TaskKind kind) {
  switch (kind) {
    case TaskKind::kProcessToken:
      return "process-token";
    case TaskKind::kRunAction:
      return "run-action";
    case TaskKind::kProcessTokenPartition:
      return "process-token-partition";
    case TaskKind::kRunActionSet:
      return "run-action-set";
  }
  return "?";
}

void TaskQueue::Push(Task task) {
  TaskKind kind = task.kind;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.pushed;
    ++stats_.per_kind[static_cast<int>(task.kind)];
    tasks_.push_back(std::move(task));
    if (tasks_.size() > stats_.max_size) stats_.max_size = tasks_.size();
  }
  cv_.notify_one();
  Observe("push:" + std::string(TaskKindName(kind)));
}

bool TaskQueue::TryPop(Task* task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (tasks_.empty()) return false;
    *task = std::move(tasks_.front());
    tasks_.pop_front();
    ++stats_.popped;
    ++in_flight_;
  }
  Observe("pop:" + std::string(TaskKindName(task->kind)));
  return true;
}

bool TaskQueue::WaitPop(Task* task, std::chrono::milliseconds timeout) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, timeout,
                 [this] { return !tasks_.empty() || closed_; });
    if (tasks_.empty()) return false;
    *task = std::move(tasks_.front());
    tasks_.pop_front();
    ++stats_.popped;
    ++in_flight_;
  }
  Observe("pop:" + std::string(TaskKindName(task->kind)));
  return true;
}

void TaskQueue::MarkDone() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (in_flight_ > 0) --in_flight_;
  }
  idle_cv_.notify_all();
  Observe("done");
}

void TaskQueue::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] {
    return (tasks_.empty() && in_flight_ == 0) || closed_;
  });
}

size_t TaskQueue::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

void TaskQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
  idle_cv_.notify_all();
  Observe("close");
}

bool TaskQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

size_t TaskQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

TaskQueueStats TaskQueue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace tman
