#include "runtime/deterministic.h"

namespace tman {

void DeterministicScheduler::AddActor(std::string name, StepFn step) {
  Actor actor;
  actor.name = std::move(name);
  actor.step = std::move(step);
  actors_.push_back(std::move(actor));
}

bool DeterministicScheduler::Step() {
  // Collect runnable actors; index order is stable so the RNG draw alone
  // decides the schedule.
  std::vector<size_t> runnable;
  runnable.reserve(actors_.size());
  for (size_t i = 0; i < actors_.size(); ++i) {
    if (!actors_[i].done) runnable.push_back(i);
  }
  if (runnable.empty()) return false;
  Actor& actor = actors_[runnable[rng_.Uniform(runnable.size())]];
  trace_.push_back(actor.name + "#" + std::to_string(actor.steps));
  ++actor.steps;
  if (!actor.step()) {
    actor.done = true;
    trace_.push_back(actor.name + ":done");
  }
  return true;
}

uint64_t DeterministicScheduler::Run(uint64_t max_steps) {
  uint64_t steps = 0;
  while (steps < max_steps && Step()) ++steps;
  return steps;
}

std::string DeterministicScheduler::TraceString() const {
  std::string out;
  for (const std::string& e : trace_) {
    out += e;
    out += '\n';
  }
  return out;
}

void AddQueueDriverActor(DeterministicScheduler* sched, std::string name,
                         TaskQueue* queue,
                         std::function<bool()> no_more_work) {
  AddQueueDriverActor(sched, std::move(name), queue, queue->home_shard(),
                      std::move(no_more_work));
}

void AddQueueDriverActor(DeterministicScheduler* sched, std::string name,
                         TaskQueue* queue, uint32_t home_shard,
                         std::function<bool()> no_more_work) {
  std::string label = name;
  sched->AddActor(std::move(name),
                  [sched, label, queue, home_shard,
                   fn = std::move(no_more_work)] {
                    Task task;
                    if (queue->TryPopFromShard(home_shard, &task)) {
                      Status s = task.work();
                      queue->MarkDone();
                      sched->Note(label + ":ran:" +
                                  std::string(TaskKindName(task.kind)) +
                                  (s.ok() ? "" : ":" + s.ToString()));
                      return true;
                    }
                    // Nothing to pop: stay alive while producers may still
                    // push, otherwise finish.
                    return !fn();
                  });
}

}  // namespace tman
