#include "runtime/driver.h"

#include "util/logging.h"

namespace tman {

namespace {

/// Runs one popped task through the fault-injection seam, updating the
/// executor counters. Shared by the TmanTest loop and the driver wakeup
/// path so both report errors identically.
void RunOneTask(TaskQueue* queue, Task* task, ExecutorStats* stats,
                FaultInjector* fault_injector) {
  Status s = fault_injector != nullptr ? fault_injector->Check("executor.task")
                                       : Status::OK();
  if (s.ok()) s = task->work();
  queue->MarkDone();
  ++stats->tasks_executed;
  if (!s.ok()) {
    ++stats->task_errors;
    TMAN_LOG(kWarn) << "task (" << TaskKindName(task->kind)
                    << ") failed: " << s.ToString();
  }
}

}  // namespace

uint32_t ComputeNumDrivers(const DriverConfig& config) {
  if (config.num_drivers > 0) return config.num_drivers;
  uint32_t cpus = config.num_cpus != 0
                      ? config.num_cpus
                      : std::max(1u, std::thread::hardware_concurrency());
  double level = config.concurrency_level;
  if (level <= 0.0) level = 1.0;
  if (level > 1.0) level = 1.0;
  return static_cast<uint32_t>(
      std::ceil(static_cast<double>(cpus) * level));
}

TmanTestResult TmanTest(TaskQueue* queue, std::chrono::milliseconds threshold,
                        ExecutorStats* stats, Clock* clock,
                        FaultInjector* fault_injector, uint32_t pop_batch) {
  if (clock == nullptr) clock = Clock::Real();
  if (pop_batch == 0) pop_batch = 1;
  auto start = clock->Now();
  ++stats->invocations;
  // Paper pseudocode: while (elapsed < THRESHOLD and work left) { run one
  // task; yield }. Tasks are claimed pop_batch at a time (one queue-lock
  // acquisition per batch); a claimed batch always runs to completion —
  // the THRESHOLD check moves between batches, so the worst-case overrun
  // is one batch of tasks, and claimed work is never re-queued.
  std::vector<Task> tasks;
  while (clock->Now() - start < threshold) {
    tasks.clear();
    if (queue->PopBatch(&tasks, pop_batch) == 0) break;
    for (Task& task : tasks) {
      RunOneTask(queue, &task, stats, fault_injector);
      clock->Yield();  // mi_yield: let other engine work run
    }
  }
  return queue->empty() ? TmanTestResult::kTaskQueueEmpty
                        : TmanTestResult::kTasksRemaining;
}

DriverPool::DriverPool(TaskQueue* queue, DriverConfig config)
    : queue_(queue),
      config_(config),
      num_drivers_(ComputeNumDrivers(config)) {}

DriverPool::~DriverPool() { Stop(); }

void DriverPool::Start() {
  if (running_.exchange(true)) return;
  threads_.reserve(num_drivers_);
  for (uint32_t i = 0; i < num_drivers_; ++i) {
    threads_.emplace_back([this, i] { DriverLoop(i); });
  }
}

void DriverPool::Stop() {
  if (!running_.exchange(false)) return;
  queue_->Close();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void DriverPool::Drain() { queue_->WaitIdle(); }

ExecutorStats DriverPool::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void DriverPool::DriverLoop(uint32_t driver_index) {
  (void)driver_index;
  ExecutorStats local;
  while (running_.load(std::memory_order_acquire)) {
    TmanTestResult result =
        TmanTest(queue_, config_.threshold, &local, config_.clock,
                 config_.fault_injector, config_.pop_batch);
    if (result == TmanTestResult::kTaskQueueEmpty) {
      // Wait up to the driver period T for new work (waking early on
      // Push, which strictly improves on fixed-period polling).
      Task task;
      if (queue_->WaitPop(&task, config_.period)) {
        RunOneTask(queue_, &task, &local, config_.fault_injector);
      } else if (queue_->closed()) {
        break;
      }
    }
    // kTasksRemaining: call back immediately, per the paper.
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.invocations += local.invocations;
  stats_.tasks_executed += local.tasks_executed;
  stats_.task_errors += local.task_errors;
}

}  // namespace tman
