#ifndef TRIGGERMAN_RUNTIME_DETERMINISTIC_H_
#define TRIGGERMAN_RUNTIME_DETERMINISTIC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/task_queue.h"
#include "util/random.h"

namespace tman {

/// A deterministic, single-threaded cooperative scheduler for concurrency
/// testing. The §6 architecture (shared task queue + N drivers + token
/// sources) is modeled as a set of *actors*, each contributing one atomic
/// step at a time (push one token, pop-and-run one task, create one
/// trigger, ...). At every scheduling point a PRNG seeded from the
/// constructor picks which runnable actor executes next, so
///
///   * every interleaving the scheduler produces is a function of the
///     seed alone — a failing schedule replays exactly from its seed;
///   * sweeping seeds explores distinct interleavings of the same
///     workload without wall-clock races or stress-test luck.
///
/// Every step (and every actor-reported Note) is appended to an event
/// trace; two runs with the same seed and the same actors produce
/// byte-identical traces, which is the reproducibility contract the
/// deterministic schedule tests assert.
class DeterministicScheduler {
 public:
  /// A step returns false when the actor has no more work (it is then
  /// never scheduled again).
  using StepFn = std::function<bool()>;

  explicit DeterministicScheduler(uint64_t seed)
      : seed_(seed), rng_(seed) {}

  DeterministicScheduler(const DeterministicScheduler&) = delete;
  DeterministicScheduler& operator=(const DeterministicScheduler&) = delete;

  /// Registers an actor. Names appear in the trace; keep them short.
  void AddActor(std::string name, StepFn step);

  /// Executes one step of one randomly chosen runnable actor. Returns
  /// false when every actor has finished.
  bool Step();

  /// Runs until all actors finish or `max_steps` is hit; returns the
  /// number of steps executed.
  uint64_t Run(uint64_t max_steps = 1000000);

  /// Appends a custom event to the trace (called from inside actor steps
  /// to record observations, e.g. queue events or match results).
  void Note(std::string event) { trace_.push_back(std::move(event)); }

  uint64_t seed() const { return seed_; }
  const std::vector<std::string>& trace() const { return trace_; }

  /// The trace as one newline-joined string (for failure messages and
  /// golden comparisons).
  std::string TraceString() const;

 private:
  struct Actor {
    std::string name;
    StepFn step;
    bool done = false;
    uint64_t steps = 0;
  };

  uint64_t seed_;
  Random rng_;
  std::vector<Actor> actors_;
  std::vector<std::string> trace_;
};

/// Registers a driver actor over `queue`: each step pops one task with
/// TryPop and runs it (mirroring one TmanTest loop iteration at step
/// granularity). The actor reports itself done when the queue is empty
/// and `no_more_work` returns true (e.g. "all producer actors finished").
/// Task statuses are recorded in the scheduler trace.
void AddQueueDriverActor(DeterministicScheduler* sched, std::string name,
                         TaskQueue* queue,
                         std::function<bool()> no_more_work);

/// Variant pinning the driver actor to an explicit home shard: pops via
/// TryPopFromShard so a single-threaded deterministic run exercises the
/// work-stealing scan (actors homed on different shards steal from each
/// other), with the interleaving still a pure function of the seed.
void AddQueueDriverActor(DeterministicScheduler* sched, std::string name,
                         TaskQueue* queue, uint32_t home_shard,
                         std::function<bool()> no_more_work);

}  // namespace tman

#endif  // TRIGGERMAN_RUNTIME_DETERMINISTIC_H_
