#ifndef TRIGGERMAN_RUNTIME_TASK_QUEUE_H_
#define TRIGGERMAN_RUNTIME_TASK_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace tman {

/// The four task types of §6. The payload is a closure built by the
/// trigger manager; the kind is kept explicit so statistics and tests can
/// observe the mix.
enum class TaskKind {
  kProcessToken = 1,          // one token through the predicate index
  kRunAction = 2,             // one rule action
  kProcessTokenPartition = 3, // one token against a condition partition
  kRunActionSet = 4,          // a set of rule actions fired by one token
};

inline constexpr int kNumTaskKinds = 4;

/// Dense 0-based index for per-kind counters (TaskKind values start at 1;
/// asserts on out-of-range kinds so a future fifth kind cannot silently
/// index past the counter array).
int TaskKindIndex(TaskKind kind);

std::string_view TaskKindName(TaskKind kind);

struct Task {
  TaskKind kind = TaskKind::kProcessToken;
  std::function<Status()> work;
};

/// Counters for the queue. `max_size` is the high-water mark of tasks
/// queued across all shards (not yet popped) — the depth signal the
/// remote-ingestion credit window is judged against (see ipc/server.h).
/// `per_kind` is indexed by TaskKindIndex (0-based). `steals` counts pops
/// that drained a shard other than the popping thread's home shard.
struct TaskQueueStats {
  uint64_t pushed = 0;
  uint64_t popped = 0;
  uint64_t steals = 0;
  uint64_t max_size = 0;
  uint64_t per_kind[kNumTaskKinds] = {0, 0, 0, 0};
  uint64_t batch_pops = 0;       // PopBatch calls that returned >= 1 task
  uint64_t batch_pop_tasks = 0;  // tasks delivered through PopBatch
};

/// Per-shard snapshot for introspection (console `stats`, tests).
struct TaskQueueShardStats {
  size_t depth = 0;       // currently queued in this shard
  uint64_t pushed = 0;
  uint64_t popped = 0;    // pops that drained this shard
  uint64_t steals = 0;    // pops by threads homed elsewhere
  uint64_t batch_pops = 0;       // non-empty PopBatch drains of this shard
  uint64_t batch_pop_tasks = 0;  // tasks those drains delivered
};

/// The shared task queue of §6: "a task queue kept in shared memory to
/// store incoming or internally generated work". Multiple driver threads
/// pop concurrently (the paper uses driver processes because Informix
/// forbids spawning threads inside UDRs; the control structure is the
/// same).
///
/// Scaling: the queue is sharded. Each thread is assigned a home shard
/// (round-robin at first use); Push appends to the home shard under that
/// shard's mutex only, and TryPop drains the home shard first, then
/// steals from the others in a fixed scan order. PushBatch amortizes one
/// lock acquisition and one wakeup over a whole batch of tasks — the
/// remote-ingestion path turns a network batch into a single PushBatch.
/// Aggregate size / in-flight / high-water counters are lock-free
/// atomics, so the ipc credit window reads depth without touching any
/// shard lock.
class TaskQueue {
 public:
  /// `num_shards` = 0 picks a default sized to the hardware (clamped to
  /// [4, 32] so sharding is exercised even on small CI machines).
  explicit TaskQueue(uint32_t num_shards = 0);

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  /// Enqueues a task on the calling thread's home shard; wakes one
  /// waiting driver.
  void Push(Task task);

  /// Enqueues a whole batch under one shard lock with one wakeup pass.
  void PushBatch(std::vector<Task> tasks);

  /// Explicit-shard variants: the deterministic scheduler (single-
  /// threaded) uses these to model producers/drivers homed on distinct
  /// shards, so steal paths replay as a pure function of the seed.
  void PushToShard(uint32_t shard, Task task);
  void PushBatchToShard(uint32_t shard, std::vector<Task> tasks);

  /// Non-blocking pop: home shard first, then steal. Returns false if
  /// every shard is empty.
  bool TryPop(Task* task);
  bool TryPopFromShard(uint32_t home_shard, Task* task);

  /// Batched pop: drains up to `max_tasks` from the front of one shard
  /// under a single lock acquisition — the consumer-side mirror of
  /// PushBatch. The home shard is drained first; when it is empty the
  /// scan steals from the first non-empty victim, but takes at most half
  /// of that shard's queue (min 1) so a thief never strips an owner bare.
  /// Appends to `*out` and returns the number of tasks delivered (0 when
  /// every shard is empty or the queue is paused).
  size_t PopBatch(std::vector<Task>* out, size_t max_tasks);
  size_t PopBatchFromShard(uint32_t home_shard, std::vector<Task>* out,
                           size_t max_tasks);

  /// Blocking pop with timeout (the driver period T: a driver sleeps at
  /// most this long when the queue is empty, waking early on new work).
  bool WaitPop(Task* task, std::chrono::milliseconds timeout);

  /// Closes the queue: subsequent WaitPop calls return false once empty.
  void Close();
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Pauses dispatch: pops return nothing (WaitPop sleeps) while tasks
  /// keep accumulating, until Resume(). Tasks already popped finish
  /// normally. The cluster node holds processing through this gate while
  /// a router's rejoin fences may still invalidate staged tokens, so the
  /// hold binds every driver — not just callers that poll a flag. Close()
  /// overrides a pause (drivers must still exit).
  void Pause();
  void Resume();
  bool paused() const { return paused_.load(std::memory_order_acquire); }

  /// Executors call this after finishing a popped task; WaitIdle uses the
  /// popped-but-unfinished count to define quiescence.
  void MarkDone();

  /// Blocks until no task is queued or executing (or the queue closes).
  void WaitIdle();

  /// Total queued across shards (lock-free; the ipc credit bound reads
  /// this on every grant).
  size_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }
  size_t in_flight() const {
    return in_flight_.load(std::memory_order_acquire);
  }

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

  /// The shard Push/TryPop would use from the calling thread.
  uint32_t home_shard() const;

  TaskQueueStats stats() const;
  std::vector<TaskQueueShardStats> shard_stats() const;

  /// Test seam for the deterministic harness: when set, each completed
  /// transition reports one short event ("push:<kind>", "pop:<kind>",
  /// "steal:<kind>", "done", "close") so schedule tests can record
  /// queue-level traces. The observer runs outside the shard mutex after
  /// the transition; install it before any concurrent use (events from
  /// racing threads would otherwise interleave nondeterministically — the
  /// deterministic scheduler is single-threaded, so its traces are
  /// exact).
  void set_observer(std::function<void(std::string_view)> observer) {
    observer_ = std::move(observer);
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::deque<Task> tasks;
    // Written (relaxed) under the shard mutex alongside the deque, but
    // read lock-free by stats()/shard_stats(): a stats poll (console,
    // adaptive re-optimizer round) never contends with the hot push/pop
    // path, and every value is one whole 64-bit atomic load — no torn
    // reads for tsan to flag.
    std::atomic<size_t> depth{0};
    std::atomic<uint64_t> pushed{0};
    std::atomic<uint64_t> popped{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> batch_pops{0};
    std::atomic<uint64_t> batch_pop_tasks{0};
    std::atomic<uint64_t> per_kind[kNumTaskKinds] = {{0}, {0}, {0}, {0}};
  };

  void Observe(std::string_view event) {
    if (observer_) observer_(event);
  }

  /// Records the post-push total and maintains the global high-water.
  void NoteQueued(size_t added);

  /// Wakes sleepers after a push. The empty lock/unlock of sleep_mutex_
  /// before notifying closes the window where a waiter has evaluated its
  /// predicate (queue empty) but not yet blocked — without it the notify
  /// could fire before the wait starts and be lost.
  void WakeSleepers(size_t pushed);

  /// Notifies WaitIdle waiters when the queue may have become idle.
  void NotifyIfIdle();

  std::function<void(std::string_view)> observer_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<size_t> size_{0};
  std::atomic<size_t> in_flight_{0};
  std::atomic<uint64_t> max_size_{0};
  std::atomic<bool> closed_{false};
  std::atomic<bool> paused_{false};

  // Sleep/wake machinery for WaitPop (used only when drivers run dry).
  mutable std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<uint32_t> waiters_{0};

  // WaitIdle machinery.
  mutable std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
};

}  // namespace tman

#endif  // TRIGGERMAN_RUNTIME_TASK_QUEUE_H_
