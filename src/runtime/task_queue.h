#ifndef TRIGGERMAN_RUNTIME_TASK_QUEUE_H_
#define TRIGGERMAN_RUNTIME_TASK_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "util/status.h"

namespace tman {

/// The four task types of §6. The payload is a closure built by the
/// trigger manager; the kind is kept explicit so statistics and tests can
/// observe the mix.
enum class TaskKind {
  kProcessToken = 1,          // one token through the predicate index
  kRunAction = 2,             // one rule action
  kProcessTokenPartition = 3, // one token against a condition partition
  kRunActionSet = 4,          // a set of rule actions fired by one token
};

std::string_view TaskKindName(TaskKind kind);

struct Task {
  TaskKind kind = TaskKind::kProcessToken;
  std::function<Status()> work;
};

/// Counters for the queue. `max_size` is the high-water mark of queued
/// (not yet popped) tasks — the depth signal the remote-ingestion credit
/// window is judged against (see ipc/server.h).
struct TaskQueueStats {
  uint64_t pushed = 0;
  uint64_t popped = 0;
  uint64_t max_size = 0;
  uint64_t per_kind[5] = {0, 0, 0, 0, 0};
};

/// The shared task queue of §6: "a task queue kept in shared memory to
/// store incoming or internally generated work". Multiple driver threads
/// pop concurrently (the paper uses driver processes because Informix
/// forbids spawning threads inside UDRs; the control structure is the
/// same).
class TaskQueue {
 public:
  TaskQueue() = default;

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  /// Enqueues a task; wakes one waiting driver.
  void Push(Task task);

  /// Non-blocking pop. Returns false if empty.
  bool TryPop(Task* task);

  /// Blocking pop with timeout (the driver period T: a driver sleeps at
  /// most this long when the queue is empty, waking early on new work).
  bool WaitPop(Task* task, std::chrono::milliseconds timeout);

  /// Closes the queue: subsequent WaitPop calls return false once empty.
  void Close();
  bool closed() const;

  /// Executors call this after finishing a popped task; WaitIdle uses the
  /// popped-but-unfinished count to define quiescence.
  void MarkDone();

  /// Blocks until no task is queued or executing (or the queue closes).
  void WaitIdle();

  size_t size() const;
  bool empty() const { return size() == 0; }
  size_t in_flight() const;

  TaskQueueStats stats() const;

  /// Test seam for the deterministic harness: when set, each completed
  /// transition reports one short event ("push:<kind>", "pop:<kind>",
  /// "done", "close") so schedule tests can record queue-level traces.
  /// The observer runs outside the queue mutex after the transition;
  /// install it before any concurrent use (events from racing threads
  /// would otherwise interleave nondeterministically — the deterministic
  /// scheduler is single-threaded, so its traces are exact).
  void set_observer(std::function<void(std::string_view)> observer) {
    observer_ = std::move(observer);
  }

 private:
  void Observe(std::string_view event) {
    if (observer_) observer_(event);
  }

  std::function<void(std::string_view)> observer_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Task> tasks_;
  size_t in_flight_ = 0;
  bool closed_ = false;
  TaskQueueStats stats_;
};

}  // namespace tman

#endif  // TRIGGERMAN_RUNTIME_TASK_QUEUE_H_
