#include "runtime/clock.h"

#include <thread>

namespace tman {

Clock::TimePoint SystemClock::Now() { return std::chrono::steady_clock::now(); }

void SystemClock::Yield() { std::this_thread::yield(); }

Clock* Clock::Real() {
  static SystemClock clock;
  return &clock;
}

}  // namespace tman
