#ifndef TRIGGERMAN_RUNTIME_STAGE_METRICS_H_
#define TRIGGERMAN_RUNTIME_STAGE_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/sharded_counter.h"

namespace tman {

/// The pipeline stages the adaptive layer observes. One enum value per
/// distinct latency population: staging a submitted batch, the stateful
/// maintenance pass, the predicate-index fire-matching pass, and rule
/// firing (joins + action execution).
enum class Stage : uint8_t {
  kIngest = 0,
  kMaintain = 1,
  kMatch = 2,
  kFire = 3,
};

inline constexpr int kNumStages = 4;

std::string_view StageName(Stage stage);

/// Point-in-time view of one stage's counters. `items` is the unit the
/// stage works in (tokens for ingest/maintain/match, firings for fire);
/// `batches` counts timed invocations, so total_ns / batches is the mean
/// per-invocation latency.
struct StageSnapshot {
  uint64_t batches = 0;
  uint64_t items = 0;
  uint64_t total_ns = 0;
  uint64_t max_ns = 0;
};

struct StageMetricsSnapshot {
  StageSnapshot stages[kNumStages];
  /// Queue signals sampled at snapshot time (filled by the owner — the
  /// metrics object itself has no queue reference).
  uint64_t queue_depth = 0;
  uint64_t queue_in_flight = 0;

  const StageSnapshot& stage(Stage s) const {
    return stages[static_cast<size_t>(s)];
  }
  std::string ToString() const;
};

/// Per-stage latency and volume counters, collected with sharded relaxed
/// atomics so the batched hot path records one steady_clock pair and a
/// few uncontended adds per stage per batch. Collection is gated on
/// runtime_stats::enabled(); when the gate is off, Record() is one
/// relaxed load.
class StageMetrics {
 public:
  void Record(Stage stage, uint64_t items, uint64_t elapsed_ns) {
    if (!runtime_stats::enabled()) return;
    Counters& c = counters_[static_cast<size_t>(stage)];
    c.batches.Increment();
    c.items.Add(items);
    c.total_ns.Add(elapsed_ns);
    uint64_t prev = c.max_ns.load(std::memory_order_relaxed);
    while (prev < elapsed_ns &&
           !c.max_ns.compare_exchange_weak(prev, elapsed_ns,
                                           std::memory_order_relaxed)) {
    }
  }

  StageMetricsSnapshot Snapshot() const;

 private:
  struct Counters {
    ShardedCounter batches;
    ShardedCounter items;
    ShardedCounter total_ns;
    std::atomic<uint64_t> max_ns{0};
  };
  Counters counters_[kNumStages];
};

/// Scoped stage timer: records (items, elapsed) on destruction. Reads the
/// clock only while the stats gate is on, so a disabled gate costs two
/// relaxed loads per scope.
class StageTimer {
 public:
  StageTimer(StageMetrics* metrics, Stage stage, uint64_t items)
      : metrics_(metrics), stage_(stage), items_(items) {
    if (metrics_ != nullptr && runtime_stats::enabled()) {
      start_ = std::chrono::steady_clock::now();
      armed_ = true;
    }
  }

  ~StageTimer() {
    if (!armed_) return;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    metrics_->Record(
        stage_, items_,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  /// Adjusts the item count after the fact (e.g. firings discovered while
  /// the scope ran).
  void set_items(uint64_t items) { items_ = items; }

 private:
  StageMetrics* metrics_;
  Stage stage_;
  uint64_t items_;
  std::chrono::steady_clock::time_point start_{};
  bool armed_ = false;
};

}  // namespace tman

#endif  // TRIGGERMAN_RUNTIME_STAGE_METRICS_H_
