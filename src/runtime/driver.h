#ifndef TRIGGERMAN_RUNTIME_DRIVER_H_
#define TRIGGERMAN_RUNTIME_DRIVER_H_

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <thread>
#include <vector>

#include "runtime/clock.h"
#include "runtime/task_queue.h"
#include "util/fault_injector.h"

namespace tman {

/// Configuration of the concurrent processing architecture (§6).
struct DriverConfig {
  /// NUM_CPUS. 0 = hardware_concurrency().
  uint32_t num_cpus = 0;

  /// TMAN_CONCURRENCY_LEVEL: the fraction of CPUs devoted to TriggerMan,
  /// in (0, 1]. Default 100% as in the paper.
  double concurrency_level = 1.0;

  /// T: how long a driver waits after TmanTest reports an empty queue.
  /// The paper proposes 250 ms; drivers here wake early when work arrives.
  std::chrono::milliseconds period{250};

  /// THRESHOLD: maximum time one TmanTest invocation keeps executing
  /// tasks before returning to its driver (bounds lost work on rollback
  /// and keeps UDR executions short, per the paper).
  std::chrono::milliseconds threshold{250};

  /// Explicit driver count override (0 = use the paper's formula
  /// N = ceil(NUM_CPUS * TMAN_CONCURRENCY_LEVEL)).
  uint32_t num_drivers = 0;

  /// Time source for the THRESHOLD check and yield points. Null = the
  /// real clock; deterministic tests pass a VirtualClock.
  Clock* clock = nullptr;

  /// Fault injector consulted at the "executor.task" site before each
  /// task runs (null = no injection). An injected fault counts as a task
  /// error: the task is dropped without executing, mirroring a TmanTest
  /// UDR invocation dying mid-batch.
  FaultInjector* fault_injector = nullptr;

  /// How many tasks one TmanTest iteration claims per queue access
  /// (TaskQueue::PopBatch): one shard-lock acquisition amortized over the
  /// batch. A claimed batch runs to completion, so larger values trade
  /// THRESHOLD precision and steal granularity for lock traffic. 0 = 1.
  uint32_t pop_batch = 16;
};

/// Computes N = ⌈NUM_CPUS · TMAN_CONCURRENCY_LEVEL⌉.
uint32_t ComputeNumDrivers(const DriverConfig& config);

/// Return code of TmanTest(), as in the paper's pseudocode.
enum class TmanTestResult { kTaskQueueEmpty, kTasksRemaining };

struct ExecutorStats {
  uint64_t invocations = 0;
  uint64_t tasks_executed = 0;
  uint64_t task_errors = 0;
};

/// One invocation of the TmanTest() UDR (§6): executes queued tasks until
/// THRESHOLD elapses or the queue drains, yielding between tasks (the
/// paper calls Informix's mi_yield; here Clock::Yield, which is
/// std::this_thread::yield on the real clock). THRESHOLD is measured on
/// `clock` (null = the real clock) so tests can expire it mid-batch
/// deterministically; `fault_injector` (optional) is checked at
/// "executor.task" before each task. `pop_batch` is the number of tasks
/// claimed per TaskQueue::PopBatch call (0 behaves as 1); the THRESHOLD
/// check runs between batches because claimed tasks always execute.
TmanTestResult TmanTest(TaskQueue* queue, std::chrono::milliseconds threshold,
                        ExecutorStats* stats, Clock* clock = nullptr,
                        FaultInjector* fault_injector = nullptr,
                        uint32_t pop_batch = 1);

/// The pool of driver "processes": each periodically invokes TmanTest()
/// and calls back immediately when work remains.
class DriverPool {
 public:
  DriverPool(TaskQueue* queue, DriverConfig config);
  ~DriverPool();

  DriverPool(const DriverPool&) = delete;
  DriverPool& operator=(const DriverPool&) = delete;

  void Start();
  void Stop();

  /// Blocks until the queue is empty and no task is executing (tests and
  /// benchmarks use this to wait for quiescence).
  void Drain();

  uint32_t num_drivers() const { return num_drivers_; }
  ExecutorStats stats() const;

 private:
  void DriverLoop(uint32_t driver_index);

  TaskQueue* queue_;
  DriverConfig config_;
  uint32_t num_drivers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};

  mutable std::mutex stats_mutex_;
  ExecutorStats stats_;
};

}  // namespace tman

#endif  // TRIGGERMAN_RUNTIME_DRIVER_H_
