#include "predindex/interval_index.h"

#include <algorithm>

namespace tman {

bool IntervalIndex::Interval::Contains(const Value& v) const {
  if (lo.has_value()) {
    int c = v.Compare(*lo);
    if (c < 0 || (c == 0 && !lo_inclusive)) return false;
  }
  if (hi.has_value()) {
    int c = v.Compare(*hi);
    if (c > 0 || (c == 0 && !hi_inclusive)) return false;
  }
  return true;
}

namespace {

/// Compares lower bounds; nullopt (= -inf) sorts first.
bool LoLess(const IntervalIndex::Interval& a,
            const IntervalIndex::Interval& b) {
  if (!a.lo.has_value()) return b.lo.has_value();
  if (!b.lo.has_value()) return false;
  int c = a.lo->Compare(*b.lo);
  if (c != 0) return c < 0;
  return a.id < b.id;
}

/// Max of two upper bounds; nullopt (= +inf) dominates.
std::optional<Value> MaxHi(const std::optional<Value>& a,
                           const std::optional<Value>& b) {
  if (!a.has_value() || !b.has_value()) return std::nullopt;
  return a->Compare(*b) >= 0 ? a : b;
}

/// True if bound `hi` (nullopt = +inf) is >= v.
bool HiReaches(const std::optional<Value>& hi, const Value& v) {
  return !hi.has_value() || hi->Compare(v) >= 0;
}

}  // namespace

void IntervalIndex::Insert(Interval interval) {
  dead_.erase(interval.id);
  overflow_.push_back(std::move(interval));
  ++live_count_;
  if (overflow_.size() > 16 && overflow_.size() * 4 > sorted_.size()) {
    Rebuild();
  }
}

bool IntervalIndex::Remove(uint64_t id) {
  auto contains = [id](const Interval& i) { return i.id == id; };
  bool known = std::any_of(sorted_.begin(), sorted_.end(), contains) ||
               std::any_of(overflow_.begin(), overflow_.end(), contains);
  if (!known || dead_.count(id) > 0) return false;
  dead_.insert(id);
  --live_count_;
  // Compact eagerly when most of the structure is tombstones.
  if (dead_.size() > 16 && dead_.size() * 2 > sorted_.size() + overflow_.size()) {
    Rebuild();
  }
  return true;
}

void IntervalIndex::Rebuild() const {
  std::vector<Interval> all;
  all.reserve(sorted_.size() + overflow_.size());
  for (auto& i : sorted_) {
    if (dead_.count(i.id) == 0) all.push_back(std::move(i));
  }
  for (auto& i : overflow_) {
    if (dead_.count(i.id) == 0) all.push_back(std::move(i));
  }
  dead_.clear();
  overflow_.clear();
  std::sort(all.begin(), all.end(), LoLess);
  sorted_ = std::move(all);
  // Segment tree (1-based heap layout) of max hi over sorted_ positions.
  size_t n = sorted_.size();
  tree_.assign(n == 0 ? 0 : 4 * n, std::optional<Value>());
  if (n == 0) return;
  // Iterative bottom-up build via recursion-free post-order is fiddly;
  // recursive build with an explicit lambda keeps it simple.
  std::function<void(size_t, size_t, size_t)> build =
      [&](size_t node, size_t lo, size_t hi) {
        if (lo + 1 == hi) {
          tree_[node] = sorted_[lo].hi;
          return;
        }
        size_t mid = (lo + hi) / 2;
        build(2 * node, lo, mid);
        build(2 * node + 1, mid, hi);
        tree_[node] = MaxHi(tree_[2 * node], tree_[2 * node + 1]);
      };
  build(1, 0, n);
}

void IntervalIndex::StabTree(
    const Value& v, size_t node, size_t lo, size_t hi, size_t limit,
    const std::function<void(const Interval&)>& fn) const {
  // Only positions [0, limit) have lo <= v; prune subtrees whose max hi
  // cannot reach v.
  if (lo >= limit) return;
  if (!HiReaches(tree_[node], v)) return;
  if (lo + 1 == hi) {
    const Interval& i = sorted_[lo];
    if (dead_.count(i.id) == 0 && i.Contains(v)) fn(i);
    return;
  }
  size_t mid = (lo + hi) / 2;
  StabTree(v, 2 * node, lo, mid, limit, fn);
  StabTree(v, 2 * node + 1, mid, hi, limit, fn);
}

void IntervalIndex::Stab(
    const Value& v, const std::function<void(const Interval&)>& fn) const {
  if (!sorted_.empty()) {
    // limit = first position whose lo > v (lo == v may still contain v
    // depending on inclusivity, which Contains rechecks).
    Interval probe;
    probe.lo = v;
    probe.id = UINT64_MAX;
    size_t limit = static_cast<size_t>(
        std::upper_bound(sorted_.begin(), sorted_.end(), probe, LoLess) -
        sorted_.begin());
    StabTree(v, 1, 0, sorted_.size(), limit, fn);
  }
  for (const Interval& i : overflow_) {
    if (dead_.count(i.id) == 0 && i.Contains(v)) fn(i);
  }
}

}  // namespace tman
