#include "predindex/predicate_index.h"

#include "expr/rewrite.h"

namespace tman {

PredicateIndex::PredicateIndex(Database* db, OrgPolicy policy)
    : db_(db), policy_(policy) {}

Status PredicateIndex::RegisterDataSource(DataSourceId id,
                                          const Schema& schema) {
  std::unique_lock lock(mutex_);
  if (sources_.count(id) > 0) {
    return Status::AlreadyExists("data source " + std::to_string(id) +
                                 " already registered");
  }
  sources_[id] = std::make_unique<DataSourcePredicateIndex>(id, schema, db_,
                                                            policy_);
  return Status::OK();
}

bool PredicateIndex::HasDataSource(DataSourceId id) const {
  std::shared_lock lock(mutex_);
  return sources_.count(id) > 0;
}

Result<AddPredicateInfo> PredicateIndex::AddPredicate(
    const PredicateSpec& spec) {
  std::unique_lock lock(mutex_);
  auto it = sources_.find(spec.data_source);
  if (it == sources_.end()) {
    return Status::NotFound("data source " +
                            std::to_string(spec.data_source) +
                            " not registered");
  }
  DataSourcePredicateIndex* src = it->second.get();

  // §5.1 step 5: generalize the predicate into (signature, constants).
  GeneralizedPredicate gen;
  if (spec.predicate != nullptr) {
    TMAN_ASSIGN_OR_RETURN(
        gen, GeneralizePredicate(spec.data_source, spec.op, spec.predicate));
  } else {
    gen.signature.data_source = spec.data_source;
    gen.signature.op = spec.op;
    gen.signature.generalized = nullptr;  // unconditional
    gen.signature.num_constants = 0;
  }
  gen.signature.update_columns = spec.update_columns;

  IndexableSplit split = SplitIndexable(gen.signature.generalized);

  bool created = false;
  TMAN_ASSIGN_OR_RETURN(
      SignatureIndexEntry * entry,
      src->FindOrCreate(gen.signature, split, next_sig_id_, &created));
  if (created) ++next_sig_id_;

  PredicateEntry pe;
  pe.expr_id = next_expr_id_++;
  pe.trigger_id = spec.trigger_id;
  pe.next_node = spec.next_node;
  pe.constants = gen.constants;
  if (entry->context().split.rest != nullptr) {
    TMAN_ASSIGN_OR_RETURN(
        pe.rest, BindPlaceholders(entry->context().split.rest, pe.constants));
  }
  TMAN_RETURN_IF_ERROR(entry->Insert(pe));
  predicate_home_[pe.expr_id] = {spec.data_source, entry};

  AddPredicateInfo info;
  info.expr_id = pe.expr_id;
  info.sig_id = entry->context().sig_id;
  info.new_signature = created;
  info.org = entry->org_type();
  info.class_size = entry->size();
  info.signature_desc = entry->context().signature.Description();
  info.constants = std::move(gen.constants);
  return info;
}

Status PredicateIndex::RemovePredicate(ExprId expr_id) {
  std::unique_lock lock(mutex_);
  auto it = predicate_home_.find(expr_id);
  if (it == predicate_home_.end()) {
    return Status::NotFound("predicate " + std::to_string(expr_id) +
                            " not found");
  }
  TMAN_RETURN_IF_ERROR(it->second.second->Remove(expr_id));
  predicate_home_.erase(it);
  return Status::OK();
}

Status PredicateIndex::Match(const UpdateDescriptor& token,
                             std::vector<PredicateMatch>* out) const {
  return MatchPartitioned(token, 0, 1, [out](const PredicateMatch& m) {
    out->push_back(m);
  });
}

Status PredicateIndex::MatchPartitioned(
    const UpdateDescriptor& token, uint32_t partition,
    uint32_t num_partitions,
    const std::function<void(const PredicateMatch&)>& fn) const {
  std::shared_lock lock(mutex_);
  tokens_processed_.fetch_add(1, std::memory_order_relaxed);
  auto it = sources_.find(token.data_source);
  if (it == sources_.end()) return Status::OK();  // no triggers here
  uint64_t emitted = 0;
  Status s = it->second->Match(token, partition, num_partitions,
                               [&](const PredicateMatch& m) {
                                 ++emitted;
                                 fn(m);
                               });
  matches_emitted_.fetch_add(emitted, std::memory_order_relaxed);
  return s;
}

Status PredicateIndex::MatchMaintenance(
    DataSourceId data_source, const Tuple& tuple, uint32_t partition,
    uint32_t num_partitions,
    const std::function<void(const PredicateMatch&)>& fn) const {
  std::shared_lock lock(mutex_);
  auto it = sources_.find(data_source);
  if (it == sources_.end()) return Status::OK();
  return it->second->MatchTuple(tuple, partition, num_partitions, fn);
}

PredicateIndexStats PredicateIndex::stats() const {
  std::shared_lock lock(mutex_);
  PredicateIndexStats st;
  st.tokens_processed = tokens_processed_.load(std::memory_order_relaxed);
  st.matches_emitted = matches_emitted_.load(std::memory_order_relaxed);
  for (const auto& [id, src] : sources_) {
    st.num_signatures += src->entries().size();
    for (const auto& e : src->entries()) st.num_predicates += e->size();
  }
  return st;
}

const DataSourcePredicateIndex* PredicateIndex::source(DataSourceId id) const {
  std::shared_lock lock(mutex_);
  auto it = sources_.find(id);
  return it == sources_.end() ? nullptr : it->second.get();
}

}  // namespace tman
