#include "predindex/predicate_index.h"

#include <algorithm>

#include "expr/compile.h"
#include "expr/rewrite.h"
#include "expr/signature.h"
#include "util/hash.h"

namespace tman {

PredicateIndex::PredicateIndex(Database* db, OrgPolicy policy,
                               uint32_t num_stripes)
    : db_(db), policy_(policy) {
  if (num_stripes == 0) num_stripes = 16;
  stripes_.reserve(num_stripes);
  for (uint32_t i = 0; i < num_stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

uint32_t PredicateIndex::StripeOf(DataSourceId id) const {
  // Data source ids are small and sequential; mix them so neighboring
  // sources land on different stripes.
  return static_cast<uint32_t>(MixInt(static_cast<uint64_t>(id)) %
                               stripes_.size());
}

PredicateIndex::Stripe& PredicateIndex::StripeFor(DataSourceId id) const {
  return *stripes_[StripeOf(id)];
}

Status PredicateIndex::RegisterDataSource(DataSourceId id,
                                          const Schema& schema) {
  Stripe& stripe = StripeFor(id);
  std::unique_lock lock(stripe.mutex);
  if (stripe.sources.count(id) > 0) {
    return Status::AlreadyExists("data source " + std::to_string(id) +
                                 " already registered");
  }
  stripe.sources[id] =
      std::make_unique<DataSourcePredicateIndex>(id, schema, db_, policy_);
  return Status::OK();
}

bool PredicateIndex::HasDataSource(DataSourceId id) const {
  Stripe& stripe = StripeFor(id);
  std::shared_lock lock(stripe.mutex);
  return stripe.sources.count(id) > 0;
}

Result<AddPredicateInfo> PredicateIndex::AddPredicate(
    const PredicateSpec& spec) {
  // §5.1 step 5: generalize the predicate into (signature, constants).
  // Pure tree work — done before any lock so the stripe's exclusive
  // section covers only the index mutation itself.
  GeneralizedPredicate gen;
  if (spec.predicate != nullptr) {
    TMAN_ASSIGN_OR_RETURN(
        gen, GeneralizePredicate(spec.data_source, spec.op, spec.predicate));
  } else {
    gen.signature.data_source = spec.data_source;
    gen.signature.op = spec.op;
    gen.signature.generalized = nullptr;  // unconditional
    gen.signature.num_constants = 0;
  }
  gen.signature.update_columns = spec.update_columns;

  IndexableSplit split = SplitIndexable(gen.signature.generalized);

  // Reserve ids outside the stripe lock. A sig id reserved for a
  // signature that turns out to already exist is simply never used —
  // ids only need to be unique, not dense.
  const uint64_t reserved_sig_id =
      next_sig_id_.fetch_add(1, std::memory_order_relaxed);
  const ExprId expr_id = next_expr_id_.fetch_add(1, std::memory_order_relaxed);

  // Bind constants and compile the rest-of-predicate outside the stripe
  // lock too — compilation is pure tree work against the source schema.
  // SplitIndexable is deterministic over the generalized tree, so this
  // local split is structurally identical to the one FindOrCreate keeps.
  ExprPtr bound_rest;
  std::shared_ptr<const CompiledPredicate> compiled_rest;
  if (split.rest != nullptr) {
    TMAN_ASSIGN_OR_RETURN(bound_rest,
                          BindPlaceholders(split.rest, gen.constants));
    const DataSourcePredicateIndex* src_view = source(spec.data_source);
    if (src_view != nullptr) {
      BindingLayout layout;
      layout.Add(std::string(SignatureVarName()), &src_view->schema());
      compiled_rest = TryCompilePredicate(bound_rest, layout);
    }
  }

  Stripe& stripe = StripeFor(spec.data_source);
  AddPredicateInfo info;
  SignatureIndexEntry* entry = nullptr;
  {
    std::unique_lock lock(stripe.mutex);
    auto it = stripe.sources.find(spec.data_source);
    if (it == stripe.sources.end()) {
      return Status::NotFound("data source " +
                              std::to_string(spec.data_source) +
                              " not registered");
    }
    DataSourcePredicateIndex* src = it->second.get();

    bool created = false;
    TMAN_ASSIGN_OR_RETURN(
        entry, src->FindOrCreate(gen.signature, split, reserved_sig_id,
                                 &created));

    PredicateEntry pe;
    pe.expr_id = expr_id;
    pe.trigger_id = spec.trigger_id;
    pe.next_node = spec.next_node;
    pe.constants = gen.constants;
    if (bound_rest != nullptr) {
      pe.rest = bound_rest;
      pe.compiled_rest = std::move(compiled_rest);
    } else if (entry->context().split.rest != nullptr) {
      // Defensive: an entry whose canonical split disagrees with the
      // local one still gets a bound rest (the interpreter covers it).
      TMAN_ASSIGN_OR_RETURN(
          pe.rest,
          BindPlaceholders(entry->context().split.rest, pe.constants));
    }
    TMAN_RETURN_IF_ERROR(entry->Insert(pe));

    info.expr_id = pe.expr_id;
    info.sig_id = entry->context().sig_id;
    info.new_signature = created;
    info.org = entry->org_type();
    info.class_size = entry->size();
    info.signature_desc = entry->context().signature.Description();
    info.constants = std::move(gen.constants);
  }
  {
    std::lock_guard<std::mutex> lock(home_mutex_);
    predicate_home_[info.expr_id] = {spec.data_source, entry};
  }
  return info;
}

Status PredicateIndex::RemovePredicate(ExprId expr_id) {
  DataSourceId data_source = 0;
  SignatureIndexEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(home_mutex_);
    auto it = predicate_home_.find(expr_id);
    if (it == predicate_home_.end()) {
      return Status::NotFound("predicate " + std::to_string(expr_id) +
                              " not found");
    }
    data_source = it->second.first;
    entry = it->second.second;
  }
  Stripe& stripe = StripeFor(data_source);
  {
    std::unique_lock lock(stripe.mutex);
    TMAN_RETURN_IF_ERROR(entry->Remove(expr_id));
  }
  {
    std::lock_guard<std::mutex> lock(home_mutex_);
    predicate_home_.erase(expr_id);
  }
  return Status::OK();
}

Status PredicateIndex::Match(const UpdateDescriptor& token,
                             std::vector<PredicateMatch>* out) const {
  return MatchPartitioned(token, 0, 1, [out](const PredicateMatch& m) {
    out->push_back(m);
  });
}

Status PredicateIndex::MatchPartitioned(
    const UpdateDescriptor& token, uint32_t partition,
    uint32_t num_partitions,
    const std::function<void(const PredicateMatch&)>& fn) const {
  Stripe& stripe = StripeFor(token.data_source);
  std::shared_lock lock(stripe.mutex);
  tokens_processed_.fetch_add(1, std::memory_order_relaxed);
  auto it = stripe.sources.find(token.data_source);
  if (it == stripe.sources.end()) return Status::OK();  // no triggers here
  uint64_t emitted = 0;
  Status s = it->second->Match(token, partition, num_partitions,
                               [&](const PredicateMatch& m) {
                                 ++emitted;
                                 fn(m);
                               });
  matches_emitted_.fetch_add(emitted, std::memory_order_relaxed);
  return s;
}

Status PredicateIndex::MatchBatch(
    const std::vector<UpdateDescriptor>& tokens, uint32_t partition,
    uint32_t num_partitions,
    const std::function<void(size_t, const PredicateMatch&)>& fn,
    std::vector<Status>* per_token) const {
  std::vector<Status> statuses(tokens.size());
  // Group lanes by data source so each (stripe, source) group pays one
  // shared-lock acquisition and one probe pass for all its tokens.
  // Lane order is preserved within a group, so per-token match order is
  // the scalar order.
  std::unordered_map<DataSourceId, std::vector<uint32_t>> groups;
  for (uint32_t lane = 0; lane < tokens.size(); ++lane) {
    groups[tokens[lane].data_source].push_back(lane);
  }
  for (auto& [source_id, lanes] : groups) {
    Stripe& stripe = StripeFor(source_id);
    std::shared_lock lock(stripe.mutex);
    tokens_processed_.fetch_add(lanes.size(), std::memory_order_relaxed);
    auto it = stripe.sources.find(source_id);
    if (it == stripe.sources.end()) continue;  // no triggers here
    uint64_t emitted = 0;
    it->second->MatchBatch(tokens.data(), lanes.data(), lanes.size(),
                           partition, num_partitions,
                           [&](size_t lane, const PredicateMatch& m) {
                             ++emitted;
                             fn(lane, m);
                           },
                           statuses.data());
    matches_emitted_.fetch_add(emitted, std::memory_order_relaxed);
  }
  Status first;
  for (const Status& s : statuses) {
    if (!s.ok()) {
      first = s;
      break;
    }
  }
  if (per_token != nullptr) *per_token = std::move(statuses);
  return first;
}

Status PredicateIndex::MatchMaintenance(
    DataSourceId data_source, const Tuple& tuple, uint32_t partition,
    uint32_t num_partitions,
    const std::function<void(const PredicateMatch&)>& fn) const {
  Stripe& stripe = StripeFor(data_source);
  std::shared_lock lock(stripe.mutex);
  auto it = stripe.sources.find(data_source);
  if (it == stripe.sources.end()) return Status::OK();
  return it->second->MatchTuple(tuple, partition, num_partitions, fn);
}

PredicateIndexStats PredicateIndex::stats() const {
  PredicateIndexStats st;
  st.tokens_processed = tokens_processed_.load(std::memory_order_relaxed);
  st.matches_emitted = matches_emitted_.load(std::memory_order_relaxed);
  for (const auto& stripe : stripes_) {
    std::shared_lock lock(stripe->mutex);
    for (const auto& [id, src] : stripe->sources) {
      st.num_signatures += src->entries().size();
      for (const auto& e : src->entries()) st.num_predicates += e->size();
    }
  }
  return st;
}

std::vector<PredicateIndexStripeStats> PredicateIndex::stripe_stats() const {
  std::vector<PredicateIndexStripeStats> out;
  out.reserve(stripes_.size());
  for (const auto& stripe : stripes_) {
    std::shared_lock lock(stripe->mutex);
    PredicateIndexStripeStats s;
    s.num_sources = stripe->sources.size();
    for (const auto& [id, src] : stripe->sources) {
      s.num_signatures += src->entries().size();
      for (const auto& e : src->entries()) s.num_predicates += e->size();
    }
    out.push_back(s);
  }
  return out;
}

std::vector<SignatureStatsReport> PredicateIndex::SignatureStats() const {
  std::vector<SignatureStatsReport> out;
  for (const auto& stripe : stripes_) {
    std::shared_lock lock(stripe->mutex);
    for (const auto& [id, src] : stripe->sources) {
      for (const auto& e : src->entries()) {
        SignatureStatsReport r;
        r.source = id;
        r.stats = e->RuntimeStats();
        out.push_back(std::move(r));
      }
    }
  }
  return out;
}

SignatureIndexEntry* PredicateIndex::FindSignature(DataSourceId source,
                                                   uint64_t sig_id) const {
  Stripe& stripe = StripeFor(source);
  std::shared_lock lock(stripe.mutex);
  auto it = stripe.sources.find(source);
  if (it == stripe.sources.end()) return nullptr;
  return it->second->FindBySigId(sig_id);
}

Status PredicateIndex::WithStripeShared(
    DataSourceId source, const std::function<Status()>& fn) const {
  Stripe& stripe = StripeFor(source);
  std::shared_lock lock(stripe.mutex);
  return fn();
}

Status PredicateIndex::WithStripeExclusive(
    DataSourceId source, const std::function<Status()>& fn) {
  Stripe& stripe = StripeFor(source);
  std::unique_lock lock(stripe.mutex);
  return fn();
}

const DataSourcePredicateIndex* PredicateIndex::source(DataSourceId id) const {
  Stripe& stripe = StripeFor(id);
  std::shared_lock lock(stripe.mutex);
  auto it = stripe.sources.find(id);
  return it == stripe.sources.end() ? nullptr : it->second.get();
}

}  // namespace tman
