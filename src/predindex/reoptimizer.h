#ifndef TRIGGERMAN_PREDINDEX_REOPTIMIZER_H_
#define TRIGGERMAN_PREDINDEX_REOPTIMIZER_H_

#include <atomic>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "predindex/cost_model.h"
#include "predindex/predicate_index.h"
#include "util/fault_injector.h"

namespace tman {

/// One adaptation event: a constant-set organization switch the
/// re-optimizer attempted, applied or not.
struct AdaptationRecord {
  uint64_t round = 0;
  DataSourceId source = 0;
  uint64_t sig_id = 0;
  std::string description;  // signature text, for the console log
  OrgType from = OrgType::kMemoryList;
  OrgType to = OrgType::kMemoryList;
  double gain_ratio = 1.0;  // modeled current/recommended cost
  size_t class_size = 0;
  bool applied = false;
  std::string note;  // failure text when !applied

  std::string ToString() const;
};

/// Bounded, thread-safe ring of adaptation events — the observable
/// history behind the `adapt log` console command. Appends past the
/// capacity evict the oldest record; `total()` keeps counting.
class AdaptationLog {
 public:
  explicit AdaptationLog(size_t capacity = 256) : capacity_(capacity) {}

  void Append(AdaptationRecord rec);

  /// Newest-last tail of at most `max_records` events.
  std::vector<AdaptationRecord> Tail(size_t max_records) const;

  uint64_t total() const;
  uint64_t total_applied() const;

 private:
  mutable std::mutex mutex_;
  size_t capacity_;
  uint64_t total_ = 0;
  uint64_t applied_ = 0;
  std::deque<AdaptationRecord> ring_;
};

struct ReoptimizerOptions {
  CostModelParams cost;
  AdaptPolicy policy;
  /// Optional: arms adapt.snapshot / adapt.build / adapt.swap so tests
  /// can fail each stage of the swap protocol.
  FaultInjector* faults = nullptr;
};

/// What one RunOnce round did.
struct AdaptRoundReport {
  uint64_t round = 0;
  size_t examined = 0;  // signatures with fresh traffic this round
  size_t switched = 0;  // organizations swapped
  size_t aborted = 0;   // version-check aborts (class mutated mid-swap)
  size_t errors = 0;    // snapshot/build/install failures

  std::string ToString() const;
};

/// The background constant-set re-optimizer (tentpole part b). Each
/// round reads every signature's runtime statistics, diffs them against
/// the previous round to get the observation window, consults the cost
/// model, and — when a switch clears the AdaptPolicy hysteresis —
/// rebuilds the class's organization off to the side and installs it
/// under the epoch swap protocol (see SignatureIndexEntry). Database
/// organizations are never adaptively switched; they keep the static
/// size thresholds.
///
/// Not itself thread-safe: one driver (the TriggerManager's adaptation
/// thread, a test, or the console's `adapt run`) calls RunOnce at a
/// time. All interaction with the index goes through its stripe locks.
class ConstantSetReoptimizer {
 public:
  ConstantSetReoptimizer(PredicateIndex* index, AdaptationLog* log,
                         ReoptimizerOptions options);

  /// One observation + adaptation round over every signature.
  AdaptRoundReport RunOnce();

  uint64_t rounds() const { return round_.load(std::memory_order_relaxed); }
  uint64_t total_switches() const {
    return total_switches_.load(std::memory_order_relaxed);
  }

  const AdaptPolicy& policy() const { return opt_.policy; }

 private:
  /// Per-signature memory between rounds: last-seen counter totals (the
  /// next round's deltas) and the post-switch cooldown.
  struct SigState {
    uint64_t probes = 0;
    uint64_t candidates = 0;
    uint64_t matches = 0;
    uint32_t cooldown = 0;
  };

  /// Runs the three-stage epoch swap for one signature.
  Status TrySwitch(const SignatureStatsReport& report, OrgType to);

  PredicateIndex* index_;
  AdaptationLog* log_;
  ReoptimizerOptions opt_;

  std::unordered_map<uint64_t, SigState> states_;  // by (globally unique) sig_id
  // Written by the (single) RunOnce driver, read concurrently by stats
  // reporting — relaxed atomics, not a claim of RunOnce thread-safety.
  std::atomic<uint64_t> round_{0};
  std::atomic<uint64_t> total_switches_{0};
};

}  // namespace tman

#endif  // TRIGGERMAN_PREDINDEX_REOPTIMIZER_H_
