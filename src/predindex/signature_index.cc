#include "predindex/signature_index.h"

#include "expr/compile.h"
#include "expr/eval.h"

namespace tman {

SignatureIndexEntry::SignatureIndexEntry(SignatureContext ctx, Database* db,
                                         OrgPolicy policy)
    : ctx_(std::move(ctx)), db_(db), policy_(policy) {}

Status SignatureIndexEntry::Open(const Schema& schema) {
  schema_ = schema;
  for (const EqConjunct& c : ctx_.split.eq) {
    TMAN_ASSIGN_OR_RETURN(size_t f, schema_.RequireField(c.attribute));
    eq_fields_.push_back(f);
  }
  if (ctx_.split.has_range) {
    TMAN_ASSIGN_OR_RETURN(size_t f,
                          schema_.RequireField(ctx_.split.range.attribute));
    range_field_ = static_cast<int>(f);
  }
  for (const std::string& col : ctx_.signature.update_columns) {
    TMAN_ASSIGN_OR_RETURN(size_t f, schema_.RequireField(col));
    update_col_fields_.push_back(f);
  }
  OrgType initial =
      policy_.forced ? policy_.forced_type : PickOrgType(0);
  TMAN_ASSIGN_OR_RETURN(org_, CreateOrganization(initial, &ctx_, db_));
  return Status::OK();
}

OrgType SignatureIndexEntry::PickOrgType(size_t size) const {
  if (policy_.forced) return policy_.forced_type;
  if (size <= policy_.list_max) return OrgType::kMemoryList;
  if (size <= policy_.memory_max) return OrgType::kMemoryIndex;
  return policy_.use_db_index ? OrgType::kDbIndexedTable : OrgType::kDbTable;
}

Status SignatureIndexEntry::MigrateTo(OrgType type) {
  TMAN_ASSIGN_OR_RETURN(std::unique_ptr<ConstantSetOrganization> fresh,
                        CreateOrganization(type, &ctx_, db_));
  Status inner = Status::OK();
  TMAN_RETURN_IF_ERROR(org_->ForEach([&](const PredicateEntry& e) {
    if (!inner.ok()) return;
    Status s = fresh->Insert(e);
    // AlreadyExists can legitimately occur when migrating *to* a database
    // organization that adopted a pre-existing constant table.
    if (!s.ok() && !s.IsAlreadyExists()) inner = s;
  }));
  TMAN_RETURN_IF_ERROR(inner);
  org_ = std::move(fresh);
  return Status::OK();
}

Status SignatureIndexEntry::Insert(const PredicateEntry& entry) {
  OrgType wanted = PickOrgType(org_->size() + 1);
  if (wanted != org_->type()) {
    TMAN_RETURN_IF_ERROR(MigrateTo(wanted));
  }
  TMAN_RETURN_IF_ERROR(org_->Insert(entry));
  if (entry.rest != nullptr) {
    // Keep a program in the side table even when the entry carries one:
    // database organizations and migrations strip the embedded copy.
    std::shared_ptr<const CompiledPredicate> prog = entry.compiled_rest;
    if (prog == nullptr) {
      BindingLayout layout;
      layout.Add(std::string(SignatureVarName()), &schema_);
      prog = TryCompilePredicate(entry.rest, layout);
    }
    if (prog != nullptr) compiled_rest_[entry.expr_id] = std::move(prog);
  }
  return Status::OK();
}

Status SignatureIndexEntry::Remove(ExprId expr_id) {
  TMAN_RETURN_IF_ERROR(org_->Remove(expr_id));
  compiled_rest_.erase(expr_id);
  return Status::OK();
  // Organizations are not downgraded on shrink: migration down would buy
  // little (the class already paid the upgrade) and churns on workloads
  // that hover near a threshold.
}

Status SignatureIndexEntry::Match(
    const UpdateDescriptor& token, uint32_t partition,
    uint32_t num_partitions,
    const std::function<void(const PredicateMatch&)>& fn) const {
  // Event condition: opcode.
  if (!OpMatches(ctx_.signature.op, token.op)) return Status::OK();
  // Event condition: "on update(col, ...)" requires a listed column to
  // have actually changed.
  if (!update_col_fields_.empty() && token.op == OpCode::kUpdate) {
    if (!token.old_tuple.has_value() || !token.new_tuple.has_value()) {
      return Status::OK();
    }
    bool changed = false;
    for (size_t f : update_col_fields_) {
      if (f < token.old_tuple->size() && f < token.new_tuple->size() &&
          token.old_tuple->at(f) != token.new_tuple->at(f)) {
        changed = true;
        break;
      }
    }
    if (!changed) return Status::OK();
  }

  return MatchTuple(token.EffectiveTuple(), partition, num_partitions, fn);
}

Status SignatureIndexEntry::MatchTuple(
    const Tuple& tuple, uint32_t partition, uint32_t num_partitions,
    const std::function<void(const PredicateMatch&)>& fn) const {
  Probe probe;
  for (size_t f : eq_fields_) {
    if (f >= tuple.size()) return Status::OK();
    probe.eq_key.push_back(tuple.at(f));
  }
  if (range_field_ >= 0) {
    size_t f = static_cast<size_t>(range_field_);
    if (f >= tuple.size()) return Status::OK();
    probe.range_value = tuple.at(f);
    probe.has_range_value = true;
  }

  Status inner = Status::OK();
  auto test = [&](const PredicateEntry& e) {
    if (!inner.ok()) return;
    candidates_tested_.fetch_add(1, std::memory_order_relaxed);
    if (e.rest != nullptr) {
      const CompiledPredicate* prog = e.compiled_rest.get();
      if (prog == nullptr) {
        auto it = compiled_rest_.find(e.expr_id);
        if (it != compiled_rest_.end()) prog = it->second.get();
      }
      if (prog != nullptr) {
        const Tuple* tuples[] = {&tuple};
        auto pass = prog->EvalBool(tuples, 1);
        if (!pass.ok()) {
          inner = pass.status();
          return;
        }
        if (!*pass) return;
      } else {
        // Fallback: dynamic or uncompilable rest goes to the interpreter.
        Bindings b;
        b.Bind(std::string(SignatureVarName()), &schema_, &tuple);
        auto pass = EvalPredicate(e.rest, b);
        if (!pass.ok()) {
          inner = pass.status();
          return;
        }
        if (!*pass) return;
      }
    }
    fn(PredicateMatch{e.trigger_id, e.expr_id, e.next_node});
  };
  TMAN_RETURN_IF_ERROR(num_partitions <= 1
                           ? org_->Match(probe, test)
                           : org_->MatchPartition(probe, partition,
                                                  num_partitions, test));
  return inner;
}

Result<SignatureIndexEntry*> DataSourcePredicateIndex::FindOrCreate(
    const ExpressionSignature& signature, const IndexableSplit& split,
    uint64_t sig_id, bool* created) {
  uint64_t h = signature.Hash();
  auto it = by_hash_.find(h);
  if (it != by_hash_.end()) {
    for (size_t idx : it->second) {
      if (entries_[idx]->context().signature.Equals(signature)) {
        *created = false;
        return entries_[idx].get();
      }
    }
  }
  SignatureContext ctx;
  ctx.signature = signature;
  ctx.split = split;
  ctx.sig_id = sig_id;
  auto entry =
      std::make_unique<SignatureIndexEntry>(std::move(ctx), db_, policy_);
  TMAN_RETURN_IF_ERROR(entry->Open(schema_));
  entries_.push_back(std::move(entry));
  by_hash_[h].push_back(entries_.size() - 1);
  *created = true;
  return entries_.back().get();
}

Status DataSourcePredicateIndex::Match(
    const UpdateDescriptor& token, uint32_t partition,
    uint32_t num_partitions,
    const std::function<void(const PredicateMatch&)>& fn) const {
  for (const auto& entry : entries_) {
    TMAN_RETURN_IF_ERROR(entry->Match(token, partition, num_partitions, fn));
  }
  return Status::OK();
}

Status DataSourcePredicateIndex::MatchTuple(
    const Tuple& tuple, uint32_t partition, uint32_t num_partitions,
    const std::function<void(const PredicateMatch&)>& fn) const {
  for (const auto& entry : entries_) {
    TMAN_RETURN_IF_ERROR(
        entry->MatchTuple(tuple, partition, num_partitions, fn));
  }
  return Status::OK();
}

}  // namespace tman
