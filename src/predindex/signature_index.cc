#include "predindex/signature_index.h"

#include "expr/compile.h"
#include "expr/eval.h"

namespace tman {

SignatureIndexEntry::SignatureIndexEntry(SignatureContext ctx, Database* db,
                                         OrgPolicy policy)
    : ctx_(std::move(ctx)), db_(db), policy_(policy) {}

Status SignatureIndexEntry::Open(const Schema& schema) {
  schema_ = schema;
  for (const EqConjunct& c : ctx_.split.eq) {
    TMAN_ASSIGN_OR_RETURN(size_t f, schema_.RequireField(c.attribute));
    eq_fields_.push_back(f);
  }
  if (ctx_.split.has_range) {
    TMAN_ASSIGN_OR_RETURN(size_t f,
                          schema_.RequireField(ctx_.split.range.attribute));
    range_field_ = static_cast<int>(f);
  }
  for (const std::string& col : ctx_.signature.update_columns) {
    TMAN_ASSIGN_OR_RETURN(size_t f, schema_.RequireField(col));
    update_col_fields_.push_back(f);
  }
  OrgType initial =
      policy_.forced ? policy_.forced_type : PickOrgType(0);
  TMAN_ASSIGN_OR_RETURN(org_, CreateOrganization(initial, &ctx_, db_));
  return Status::OK();
}

OrgType SignatureIndexEntry::PickOrgType(size_t size) const {
  if (policy_.forced) return policy_.forced_type;
  // An adaptive pin overrides the static size thresholds between the
  // memory organizations (otherwise the next Insert would migrate a
  // freshly swapped class right back); database promotion at memory_max
  // still wins — it is about footprint, not probe cost.
  int pin = adaptive_pin_.load(std::memory_order_relaxed);
  if (pin != 0 && size <= policy_.memory_max) {
    return static_cast<OrgType>(pin);
  }
  if (size <= policy_.list_max) return OrgType::kMemoryList;
  if (size <= policy_.memory_max) return OrgType::kMemoryIndex;
  return policy_.use_db_index ? OrgType::kDbIndexedTable : OrgType::kDbTable;
}

Status SignatureIndexEntry::MigrateTo(OrgType type) {
  TMAN_ASSIGN_OR_RETURN(std::unique_ptr<ConstantSetOrganization> fresh,
                        CreateOrganization(type, &ctx_, db_));
  Status inner = Status::OK();
  TMAN_RETURN_IF_ERROR(org_->ForEach([&](const PredicateEntry& e) {
    if (!inner.ok()) return;
    Status s = fresh->Insert(e);
    // AlreadyExists can legitimately occur when migrating *to* a database
    // organization that adopted a pre-existing constant table.
    if (!s.ok() && !s.IsAlreadyExists()) inner = s;
  }));
  TMAN_RETURN_IF_ERROR(inner);
  org_ = std::move(fresh);
  return Status::OK();
}

Status SignatureIndexEntry::Insert(const PredicateEntry& entry) {
  OrgType wanted = PickOrgType(org_->size() + 1);
  if (wanted != org_->type()) {
    TMAN_RETURN_IF_ERROR(MigrateTo(wanted));
  }
  TMAN_RETURN_IF_ERROR(org_->Insert(entry));
  version_.fetch_add(1, std::memory_order_relaxed);
  if (entry.rest != nullptr) {
    // Keep a program in the side table even when the entry carries one:
    // database organizations and migrations strip the embedded copy.
    std::shared_ptr<const CompiledPredicate> prog = entry.compiled_rest;
    if (prog == nullptr) {
      BindingLayout layout;
      layout.Add(std::string(SignatureVarName()), &schema_);
      prog = TryCompilePredicate(entry.rest, layout);
    }
    if (prog != nullptr) compiled_rest_[entry.expr_id] = std::move(prog);
  }
  return Status::OK();
}

Status SignatureIndexEntry::Remove(ExprId expr_id) {
  TMAN_RETURN_IF_ERROR(org_->Remove(expr_id));
  compiled_rest_.erase(expr_id);
  version_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
  // Organizations are not downgraded on shrink: migration down would buy
  // little (the class already paid the upgrade) and churns on workloads
  // that hover near a threshold.
}

Status SignatureIndexEntry::Match(
    const UpdateDescriptor& token, uint32_t partition,
    uint32_t num_partitions,
    const std::function<void(const PredicateMatch&)>& fn) const {
  // Event condition: opcode.
  if (!OpMatches(ctx_.signature.op, token.op)) return Status::OK();
  // Event condition: "on update(col, ...)" requires a listed column to
  // have actually changed.
  if (!update_col_fields_.empty() && token.op == OpCode::kUpdate) {
    if (!token.old_tuple.has_value() || !token.new_tuple.has_value()) {
      return Status::OK();
    }
    bool changed = false;
    for (size_t f : update_col_fields_) {
      if (f < token.old_tuple->size() && f < token.new_tuple->size() &&
          token.old_tuple->at(f) != token.new_tuple->at(f)) {
        changed = true;
        break;
      }
    }
    if (!changed) return Status::OK();
  }

  return MatchTuple(token.EffectiveTuple(), partition, num_partitions, fn);
}

Status SignatureIndexEntry::MatchTuple(
    const Tuple& tuple, uint32_t partition, uint32_t num_partitions,
    const std::function<void(const PredicateMatch&)>& fn) const {
  const bool track = runtime_stats::enabled();
  if (track) probes_.Increment();
  Probe probe;
  for (size_t f : eq_fields_) {
    if (f >= tuple.size()) return Status::OK();
    probe.eq_key.push_back(tuple.at(f));
  }
  if (range_field_ >= 0) {
    size_t f = static_cast<size_t>(range_field_);
    if (f >= tuple.size()) return Status::OK();
    probe.range_value = tuple.at(f);
    probe.has_range_value = true;
  }

  Status inner = Status::OK();
  auto test = [&](const PredicateEntry& e) {
    if (!inner.ok()) return;
    candidates_tested_.Increment();
    if (e.rest != nullptr) {
      const CompiledPredicate* prog = e.compiled_rest.get();
      if (prog == nullptr) {
        auto it = compiled_rest_.find(e.expr_id);
        if (it != compiled_rest_.end()) prog = it->second.get();
      }
      if (prog != nullptr) {
        const Tuple* tuples[] = {&tuple};
        auto pass = prog->EvalBool(tuples, 1);
        if (!pass.ok()) {
          inner = pass.status();
          return;
        }
        if (!*pass) return;
      } else {
        // Fallback: dynamic or uncompilable rest goes to the interpreter.
        Bindings b;
        b.Bind(std::string(SignatureVarName()), &schema_, &tuple);
        auto pass = EvalPredicate(e.rest, b);
        if (!pass.ok()) {
          inner = pass.status();
          return;
        }
        if (!*pass) return;
      }
    }
    if (track) matches_.Increment();
    fn(PredicateMatch{e.trigger_id, e.expr_id, e.next_node});
  };
  TMAN_RETURN_IF_ERROR(num_partitions <= 1
                           ? org_->Match(probe, test)
                           : org_->MatchPartition(probe, partition,
                                                  num_partitions, test));
  return inner;
}

void SignatureIndexEntry::MatchBatch(
    const UpdateDescriptor* tokens, const uint32_t* lanes, size_t num_lanes,
    uint32_t partition, uint32_t num_partitions,
    const std::function<void(size_t, const PredicateMatch&)>& fn,
    Status* lane_status) const {
  // Pass 1: event-condition filter (opcode + changed columns), per lane.
  std::vector<uint32_t> survivors;
  survivors.reserve(num_lanes);
  for (size_t i = 0; i < num_lanes; ++i) {
    const uint32_t lane = lanes[i];
    const UpdateDescriptor& token = tokens[lane];
    if (!OpMatches(ctx_.signature.op, token.op)) continue;
    if (!update_col_fields_.empty() && token.op == OpCode::kUpdate) {
      if (!token.old_tuple.has_value() || !token.new_tuple.has_value()) {
        continue;
      }
      bool changed = false;
      for (size_t f : update_col_fields_) {
        if (f < token.old_tuple->size() && f < token.new_tuple->size() &&
            token.old_tuple->at(f) != token.new_tuple->at(f)) {
          changed = true;
          break;
        }
      }
      if (!changed) continue;
    }
    survivors.push_back(lane);
  }
  if (survivors.empty()) return;

  // Pass 2: build every surviving lane's probe keys in one tight pass
  // before the organization sees any of them. A lane whose tuple is
  // narrower than the indexed fields silently drops out, as in the
  // scalar path.
  std::vector<Probe> probes(survivors.size());
  std::vector<uint8_t> viable(survivors.size(), 1);
  for (size_t i = 0; i < survivors.size(); ++i) {
    const Tuple& tuple = tokens[survivors[i]].EffectiveTuple();
    Probe& probe = probes[i];
    for (size_t f : eq_fields_) {
      if (f >= tuple.size()) {
        viable[i] = 0;
        break;
      }
      probe.eq_key.push_back(tuple.at(f));
    }
    if (viable[i] && range_field_ >= 0) {
      size_t f = static_cast<size_t>(range_field_);
      if (f >= tuple.size()) {
        viable[i] = 0;
      } else {
        probe.range_value = tuple.at(f);
        probe.has_range_value = true;
      }
    }
  }

  // Pass 3: consult the organization per lane, collecting candidates in
  // organization order. Candidates of one lane are contiguous and
  // ordered, which is what lets pass 5 replay the scalar path's emission
  // and error order exactly.
  // Owning copies of the program / rest expression: database
  // organizations materialize transient PredicateEntry objects per
  // candidate, so borrowed pointers would dangle once testing is
  // deferred past the org callback.
  struct Candidate {
    uint32_t lane = 0;
    PredicateMatch match;
    std::shared_ptr<const CompiledPredicate> prog;  // batched rest test
    ExprPtr rest;                                   // interpreter fallback
    const Tuple* tuple = nullptr;
    int8_t verdict = 1;  // 1 = pass, 0 = fail; -1 = error (see errors)
    uint32_t error_at = 0;
  };
  std::vector<Candidate> cands;
  std::vector<Status> errors;
  // Rare per-lane organization failures (database orgs only), applied
  // after the lane's already-collected candidates are processed — the
  // scalar path, too, emits matches streamed before the org error.
  std::vector<std::pair<uint32_t, Status>> org_errors;
  const bool track = runtime_stats::enabled();
  if (track) {
    uint64_t viable_lanes = 0;
    for (uint8_t v : viable) viable_lanes += v;
    if (viable_lanes != 0) probes_.Add(viable_lanes);
  }
  for (size_t i = 0; i < survivors.size(); ++i) {
    if (!viable[i]) continue;
    const uint32_t lane = survivors[i];
    const Tuple* tuple = &tokens[lane].EffectiveTuple();
    auto collect = [&](const PredicateEntry& e) {
      Candidate c;
      c.lane = lane;
      c.match = PredicateMatch{e.trigger_id, e.expr_id, e.next_node};
      c.tuple = tuple;
      if (e.rest != nullptr) {
        c.prog = e.compiled_rest;
        if (c.prog == nullptr) {
          auto it = compiled_rest_.find(e.expr_id);
          if (it != compiled_rest_.end()) c.prog = it->second;
        }
        if (c.prog == nullptr) c.rest = e.rest;
        c.verdict = 0;  // pending: pass 4 decides
      }
      cands.push_back(std::move(c));
    };
    Status s = num_partitions <= 1
                   ? org_->Match(probes[i], collect)
                   : org_->MatchPartition(probes[i], partition,
                                          num_partitions, collect);
    if (!s.ok()) org_errors.emplace_back(lane, std::move(s));
  }

  // Pass 4: test rest-of-predicates. Candidates sharing a compiled
  // program are grouped into one EvalBatch (their tuples become the
  // batch's lanes); uncompilable rests fall back to the interpreter per
  // candidate, exactly as the scalar path does.
  std::unordered_map<const CompiledPredicate*, std::vector<uint32_t>> groups;
  for (uint32_t ci = 0; ci < cands.size(); ++ci) {
    Candidate& c = cands[ci];
    if (c.prog != nullptr) {
      groups[c.prog.get()].push_back(ci);
    } else if (c.rest != nullptr) {
      Bindings b;
      b.Bind(std::string(SignatureVarName()), &schema_, c.tuple);
      auto pass = EvalPredicate(c.rest, b);
      if (!pass.ok()) {
        c.verdict = -1;
        c.error_at = static_cast<uint32_t>(errors.size());
        errors.push_back(pass.status());
      } else {
        c.verdict = *pass ? 1 : 0;
      }
    }
  }
  TokenBatch batch(1);
  BatchResult result;
  for (auto& [prog, members] : groups) {
    batch.Clear();
    for (uint32_t ci : members) batch.Append(cands[ci].tuple);
    Status s = prog->EvalBatch(batch, &result);
    for (size_t k = 0; k < members.size(); ++k) {
      Candidate& c = cands[members[k]];
      if (!s.ok()) {
        c.verdict = -1;
        c.error_at = static_cast<uint32_t>(errors.size());
        errors.push_back(s);
      } else if (!result.ok(k)) {
        c.verdict = -1;
        c.error_at = static_cast<uint32_t>(errors.size());
        errors.push_back(result.status(k));
      } else {
        c.verdict = result.Truth(k) ? 1 : 0;
      }
    }
  }

  // Pass 5: emit in collection order. Each lane streams its matches until
  // its first error, which stops that lane — the candidate that errors is
  // still counted as tested, matching the scalar counter.
  // Counter writes amortize to one Add per batch — at per-candidate
  // granularity the two sharded-counter RMWs cost a measurable few
  // percent of the ~200ns/token hash path (bench_adapt's overhead gate).
  uint64_t tested = 0;
  uint64_t matched = 0;
  for (const Candidate& c : cands) {
    if (!lane_status[c.lane].ok()) continue;
    ++tested;
    if (c.verdict < 0) {
      lane_status[c.lane] = errors[c.error_at];
    } else if (c.verdict > 0) {
      ++matched;
      fn(c.lane, c.match);
    }
  }
  if (tested != 0) candidates_tested_.Add(tested);
  if (track && matched != 0) matches_.Add(matched);
  for (auto& [lane, s] : org_errors) {
    if (lane_status[lane].ok()) lane_status[lane] = std::move(s);
  }
}

SignatureRuntimeStats SignatureIndexEntry::RuntimeStats() const {
  SignatureRuntimeStats st;
  st.sig_id = ctx_.sig_id;
  st.description = ctx_.signature.Description();
  st.org = org_->type();
  st.class_size = org_->size();
  st.has_range = ctx_.split.has_range;
  st.probes = probes_.Read();
  st.candidates = candidates_tested_.Read();
  st.matches = matches_.Read();
  st.version = version_.load(std::memory_order_relaxed);
  st.org_switches = org_switches_.load(std::memory_order_relaxed);
  return st;
}

Status SignatureIndexEntry::SnapshotEntries(
    std::vector<PredicateEntry>* out) const {
  out->clear();
  out->reserve(org_->size());
  return org_->ForEach(
      [out](const PredicateEntry& e) { out->push_back(e); });
}

Result<std::unique_ptr<ConstantSetOrganization>>
SignatureIndexEntry::BuildOrganization(
    OrgType type, const std::vector<PredicateEntry>& entries) const {
  if (type != OrgType::kMemoryList && type != OrgType::kMemoryIndex) {
    return Status::InvalidArgument(
        "adaptive rebuild supports main-memory organizations only");
  }
  TMAN_ASSIGN_OR_RETURN(std::unique_ptr<ConstantSetOrganization> fresh,
                        CreateOrganization(type, &ctx_, db_));
  for (const PredicateEntry& e : entries) {
    TMAN_RETURN_IF_ERROR(fresh->Insert(e));
  }
  return fresh;
}

Status SignatureIndexEntry::InstallOrganization(
    std::unique_ptr<ConstantSetOrganization> org, uint64_t expected_version) {
  if (org == nullptr) {
    return Status::InvalidArgument("null organization");
  }
  if (version_.load(std::memory_order_relaxed) != expected_version) {
    return Status::Aborted(
        "signature class changed during offside rebuild");
  }
  // Version match implies the class content is exactly the snapshot the
  // rebuild consumed; the size check is a defensive invariant.
  if (org->size() != org_->size()) {
    return Status::Internal("offside organization size mismatch");
  }
  org_ = std::move(org);
  adaptive_pin_.store(static_cast<int>(org_->type()),
                      std::memory_order_relaxed);
  org_switches_.fetch_add(1, std::memory_order_relaxed);
  version_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

SignatureIndexEntry* DataSourcePredicateIndex::FindBySigId(
    uint64_t sig_id) const {
  for (const auto& e : entries_) {
    if (e->context().sig_id == sig_id) return e.get();
  }
  return nullptr;
}

Result<SignatureIndexEntry*> DataSourcePredicateIndex::FindOrCreate(
    const ExpressionSignature& signature, const IndexableSplit& split,
    uint64_t sig_id, bool* created) {
  uint64_t h = signature.Hash();
  auto it = by_hash_.find(h);
  if (it != by_hash_.end()) {
    for (size_t idx : it->second) {
      if (entries_[idx]->context().signature.Equals(signature)) {
        *created = false;
        return entries_[idx].get();
      }
    }
  }
  SignatureContext ctx;
  ctx.signature = signature;
  ctx.split = split;
  ctx.sig_id = sig_id;
  auto entry =
      std::make_unique<SignatureIndexEntry>(std::move(ctx), db_, policy_);
  TMAN_RETURN_IF_ERROR(entry->Open(schema_));
  entries_.push_back(std::move(entry));
  by_hash_[h].push_back(entries_.size() - 1);
  *created = true;
  return entries_.back().get();
}

Status DataSourcePredicateIndex::Match(
    const UpdateDescriptor& token, uint32_t partition,
    uint32_t num_partitions,
    const std::function<void(const PredicateMatch&)>& fn) const {
  for (const auto& entry : entries_) {
    TMAN_RETURN_IF_ERROR(entry->Match(token, partition, num_partitions, fn));
  }
  return Status::OK();
}

void DataSourcePredicateIndex::MatchBatch(
    const UpdateDescriptor* tokens, const uint32_t* lanes, size_t num_lanes,
    uint32_t partition, uint32_t num_partitions,
    const std::function<void(size_t, const PredicateMatch&)>& fn,
    Status* lane_status) const {
  // The scalar path stops a token at its first failing entry; lanes that
  // error drop out of the scan for the remaining signatures.
  std::vector<uint32_t> active(lanes, lanes + num_lanes);
  std::vector<uint32_t> still_ok;
  for (const auto& entry : entries_) {
    if (active.empty()) return;
    entry->MatchBatch(tokens, active.data(), active.size(), partition,
                      num_partitions, fn, lane_status);
    still_ok.clear();
    for (uint32_t lane : active) {
      if (lane_status[lane].ok()) still_ok.push_back(lane);
    }
    active.swap(still_ok);
  }
}

Status DataSourcePredicateIndex::MatchTuple(
    const Tuple& tuple, uint32_t partition, uint32_t num_partitions,
    const std::function<void(const PredicateMatch&)>& fn) const {
  for (const auto& entry : entries_) {
    TMAN_RETURN_IF_ERROR(
        entry->MatchTuple(tuple, partition, num_partitions, fn));
  }
  return Status::OK();
}

}  // namespace tman
