#include "predindex/org_memory.h"

#include <algorithm>

#include "predindex/org_common.h"

namespace tman {

using predindex_internal::EncodeValues;
using predindex_internal::EntryMatchesProbe;
using predindex_internal::EqKeyOf;
using predindex_internal::IntervalOf;

// ---------------------------------------------------------------------------
// MemoryListOrganization
// ---------------------------------------------------------------------------

Status MemoryListOrganization::Insert(const PredicateEntry& entry) {
  for (const PredicateEntry& e : entries_) {
    if (e.expr_id == entry.expr_id) {
      return Status::AlreadyExists("expr " + std::to_string(entry.expr_id) +
                                   " already present");
    }
  }
  entries_.push_back(entry);
  return Status::OK();
}

Status MemoryListOrganization::Remove(ExprId expr_id) {
  auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [expr_id](const PredicateEntry& e) { return e.expr_id == expr_id; });
  if (it == entries_.end()) {
    return Status::NotFound("expr " + std::to_string(expr_id) + " not found");
  }
  entries_.erase(it);
  return Status::OK();
}

Status MemoryListOrganization::Match(
    const Probe& probe,
    const std::function<void(const PredicateEntry&)>& fn) const {
  for (const PredicateEntry& e : entries_) {
    if (EntryMatchesProbe(*ctx_, e, probe)) fn(e);
  }
  return Status::OK();
}

Status MemoryListOrganization::ForEach(
    const std::function<void(const PredicateEntry&)>& fn) const {
  for (const PredicateEntry& e : entries_) fn(e);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MemoryIndexOrganization
// ---------------------------------------------------------------------------

Status MemoryIndexOrganization::Insert(const PredicateEntry& entry) {
  if (!ctx_->split.eq.empty()) {
    std::string key = EncodeValues(EqKeyOf(*ctx_, entry));
    if (eq_key_of_.count(entry.expr_id) > 0) {
      return Status::AlreadyExists("expr " + std::to_string(entry.expr_id) +
                                   " already present");
    }
    eq_buckets_[key].push_back(entry);
    eq_key_of_[entry.expr_id] = std::move(key);
  } else if (ctx_->split.has_range) {
    if (by_id_.count(entry.expr_id) > 0) {
      return Status::AlreadyExists("expr " + std::to_string(entry.expr_id) +
                                   " already present");
    }
    intervals_.Insert(IntervalOf(*ctx_, entry));
    by_id_[entry.expr_id] = entry;
  } else {
    for (const PredicateEntry& e : plain_) {
      if (e.expr_id == entry.expr_id) {
        return Status::AlreadyExists("expr " + std::to_string(entry.expr_id) +
                                     " already present");
      }
    }
    plain_.push_back(entry);
  }
  ++size_;
  return Status::OK();
}

Status MemoryIndexOrganization::Remove(ExprId expr_id) {
  if (!ctx_->split.eq.empty()) {
    auto it = eq_key_of_.find(expr_id);
    if (it == eq_key_of_.end()) {
      return Status::NotFound("expr " + std::to_string(expr_id) +
                              " not found");
    }
    auto bucket = eq_buckets_.find(it->second);
    if (bucket != eq_buckets_.end()) {
      auto& vec = bucket->second;
      vec.erase(std::remove_if(vec.begin(), vec.end(),
                               [expr_id](const PredicateEntry& e) {
                                 return e.expr_id == expr_id;
                               }),
                vec.end());
      if (vec.empty()) eq_buckets_.erase(bucket);
    }
    eq_key_of_.erase(it);
  } else if (ctx_->split.has_range) {
    auto it = by_id_.find(expr_id);
    if (it == by_id_.end()) {
      return Status::NotFound("expr " + std::to_string(expr_id) +
                              " not found");
    }
    intervals_.Remove(expr_id);
    by_id_.erase(it);
  } else {
    auto it = std::find_if(
        plain_.begin(), plain_.end(),
        [expr_id](const PredicateEntry& e) { return e.expr_id == expr_id; });
    if (it == plain_.end()) {
      return Status::NotFound("expr " + std::to_string(expr_id) +
                              " not found");
    }
    plain_.erase(it);
  }
  --size_;
  return Status::OK();
}

Status MemoryIndexOrganization::Match(
    const Probe& probe,
    const std::function<void(const PredicateEntry&)>& fn) const {
  if (!ctx_->split.eq.empty()) {
    for (const Value& v : probe.eq_key) {
      if (v.is_null()) return Status::OK();
    }
    auto it = eq_buckets_.find(EncodeValues(probe.eq_key));
    if (it != eq_buckets_.end()) {
      for (const PredicateEntry& e : it->second) fn(e);
    }
    return Status::OK();
  }
  if (ctx_->split.has_range) {
    if (!probe.has_range_value || probe.range_value.is_null()) {
      return Status::OK();
    }
    intervals_.Stab(probe.range_value,
                    [this, &fn](const IntervalIndex::Interval& iv) {
                      auto it = by_id_.find(iv.id);
                      if (it != by_id_.end()) fn(it->second);
                    });
    return Status::OK();
  }
  for (const PredicateEntry& e : plain_) fn(e);
  return Status::OK();
}

Status MemoryIndexOrganization::ForEach(
    const std::function<void(const PredicateEntry&)>& fn) const {
  for (const auto& [key, bucket] : eq_buckets_) {
    for (const PredicateEntry& e : bucket) fn(e);
  }
  for (const auto& [id, e] : by_id_) fn(e);
  for (const PredicateEntry& e : plain_) fn(e);
  return Status::OK();
}

}  // namespace tman
