#include "predindex/reoptimizer.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace tman {

std::string AdaptationRecord::ToString() const {
  const std::string from_name(OrgTypeName(from));
  const std::string to_name(OrgTypeName(to));
  const std::string suffix = note.empty() ? std::string() : ": " + note;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "round=%llu src=%u sig=%llu %s -> %s gain=%.2fx size=%zu %s%s",
                static_cast<unsigned long long>(round),
                static_cast<unsigned>(source),
                static_cast<unsigned long long>(sig_id), from_name.c_str(),
                to_name.c_str(), gain_ratio, class_size,
                applied ? "applied" : "failed", suffix.c_str());
  return buf;
}

void AdaptationLog::Append(AdaptationRecord rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  if (rec.applied) ++applied_;
  ring_.push_back(std::move(rec));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<AdaptationRecord> AdaptationLog::Tail(size_t max_records) const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = std::min(max_records, ring_.size());
  return std::vector<AdaptationRecord>(ring_.end() - n, ring_.end());
}

uint64_t AdaptationLog::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

uint64_t AdaptationLog::total_applied() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return applied_;
}

std::string AdaptRoundReport::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "round=%llu examined=%zu switched=%zu aborted=%zu errors=%zu",
                static_cast<unsigned long long>(round), examined, switched,
                aborted, errors);
  return buf;
}

ConstantSetReoptimizer::ConstantSetReoptimizer(PredicateIndex* index,
                                               AdaptationLog* log,
                                               ReoptimizerOptions options)
    : index_(index), log_(log), opt_(std::move(options)) {
  if (opt_.faults != nullptr) {
    opt_.faults->RegisterSite("adapt.snapshot");
    opt_.faults->RegisterSite("adapt.build");
    opt_.faults->RegisterSite("adapt.swap");
  }
}

AdaptRoundReport ConstantSetReoptimizer::RunOnce() {
  AdaptRoundReport report;
  report.round = ++round_;

  std::vector<SignatureStatsReport> stats = index_->SignatureStats();
  for (const SignatureStatsReport& sig : stats) {
    SigState& state = states_[sig.stats.sig_id];

    // Counters are lifetime totals; the observation window is the delta
    // since our previous round.
    ObservedSignatureLoad load;
    load.class_size = sig.stats.class_size;
    load.probes = sig.stats.probes - state.probes;
    load.candidates = sig.stats.candidates - state.candidates;
    load.matches = sig.stats.matches - state.matches;
    state.probes = sig.stats.probes;
    state.candidates = sig.stats.candidates;
    state.matches = sig.stats.matches;

    if (state.cooldown > 0) {
      --state.cooldown;
      continue;
    }
    if (load.probes == 0) continue;
    ++report.examined;

    // Database organizations are size-mandated ([Hans98b] organizations
    // 3/4); adaptation stays within the main-memory tiers.
    OrgType current = sig.stats.org;
    if (current != OrgType::kMemoryList && current != OrgType::kMemoryIndex) {
      continue;
    }

    AdaptDecision decision =
        DecideOrganization(current, load, opt_.policy, opt_.cost);
    if (!decision.beneficial) continue;
    if (report.switched >= opt_.policy.max_switches_per_round) break;

    AdaptationRecord rec;
    rec.round = report.round;
    rec.source = sig.source;
    rec.sig_id = sig.stats.sig_id;
    rec.description = sig.stats.description;
    rec.from = current;
    rec.to = decision.recommended;
    rec.gain_ratio = decision.gain_ratio;
    rec.class_size = load.class_size;

    Status s = TrySwitch(sig, decision.recommended);
    if (s.ok()) {
      rec.applied = true;
      ++report.switched;
      ++total_switches_;
      state.cooldown = opt_.policy.cooldown_rounds;
    } else {
      rec.applied = false;
      rec.note = s.ToString();
      if (s.code() == StatusCode::kAborted) {
        ++report.aborted;
      } else {
        ++report.errors;
      }
    }
    if (log_ != nullptr) log_->Append(std::move(rec));
  }
  return report;
}

Status ConstantSetReoptimizer::TrySwitch(const SignatureStatsReport& report,
                                         OrgType to) {
  SignatureIndexEntry* entry =
      index_->FindSignature(report.source, report.stats.sig_id);
  if (entry == nullptr) {
    return Status::NotFound("signature vanished before reorganization");
  }

  // Stage 1: copy the class and read its version under the stripe's
  // shared lock — matching proceeds concurrently.
  std::vector<PredicateEntry> snapshot;
  uint64_t version = 0;
  TMAN_RETURN_IF_ERROR(index_->WithStripeShared(report.source, [&]() {
    if (opt_.faults != nullptr) {
      TMAN_RETURN_IF_ERROR(opt_.faults->Check("adapt.snapshot"));
    }
    version = entry->version();
    return entry->SnapshotEntries(&snapshot);
  }));

  // Stage 2: build the replacement offside, no lock held.
  if (opt_.faults != nullptr) {
    TMAN_RETURN_IF_ERROR(opt_.faults->Check("adapt.build"));
  }
  TMAN_ASSIGN_OR_RETURN(std::unique_ptr<ConstantSetOrganization> built,
                        entry->BuildOrganization(to, snapshot));

  // Stage 3: install under the exclusive lock — the epoch barrier. A
  // concurrent Insert/Remove since stage 1 surfaces as Aborted.
  return index_->WithStripeExclusive(report.source, [&]() {
    if (opt_.faults != nullptr) {
      TMAN_RETURN_IF_ERROR(opt_.faults->Check("adapt.swap"));
    }
    return entry->InstallOrganization(std::move(built), version);
  });
}

}  // namespace tman
