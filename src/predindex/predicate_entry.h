#ifndef TRIGGERMAN_PREDINDEX_PREDICATE_ENTRY_H_
#define TRIGGERMAN_PREDINDEX_PREDICATE_ENTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "types/value.h"

namespace tman {

class CompiledPredicate;

/// Unique id of one selection-predicate instance (the exprID column of a
/// constant table).
using ExprId = uint64_t;

/// Unique id of a trigger.
using TriggerId = uint64_t;

/// Id of an A-TREAT network node within a trigger (the nextNetworkNode
/// column): the node a token is passed to after matching the predicate.
using NetworkNodeId = uint32_t;

/// The in-memory image of one constant-table row (§5.1): which trigger the
/// predicate belongs to, where its token goes next, the extracted
/// constants, and the non-indexable rest of the predicate.
struct PredicateEntry {
  ExprId expr_id = 0;
  TriggerId trigger_id = 0;
  NetworkNodeId next_node = 0;

  /// All m constants of the predicate, numbered as in the signature.
  std::vector<Value> constants;

  /// restOfPredicate with this row's constants already bound (concrete,
  /// references the canonical signature variable); null when the whole
  /// predicate was indexable.
  ExprPtr rest;

  /// `rest` compiled to bytecode against the source schema (see
  /// expr/compile.h). Null when there is no rest, when compilation was
  /// refused (match falls back to the interpreter), or when the entry was
  /// round-tripped through a database organization — those lose the
  /// program and the SignatureIndexEntry's side table supplies it.
  std::shared_ptr<const CompiledPredicate> compiled_rest;
};

/// What the predicate index reports for a matched token (§5.4): enough to
/// pin the trigger and pass the token to its network node.
struct PredicateMatch {
  TriggerId trigger_id = 0;
  ExprId expr_id = 0;
  NetworkNodeId next_node = 0;
};

/// The probe derived from a token for one signature: the token's values
/// for the signature's equality attributes, and/or the value of its range
/// attribute.
struct Probe {
  std::vector<Value> eq_key;
  Value range_value;
  bool has_range_value = false;
};

}  // namespace tman

#endif  // TRIGGERMAN_PREDINDEX_PREDICATE_ENTRY_H_
