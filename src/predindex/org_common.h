#ifndef TRIGGERMAN_PREDINDEX_ORG_COMMON_H_
#define TRIGGERMAN_PREDINDEX_ORG_COMMON_H_

#include <optional>
#include <string>
#include <vector>

#include "predindex/interval_index.h"
#include "predindex/organization.h"

namespace tman::predindex_internal {

/// Projects an entry's constants onto the signature's equality
/// placeholders: the composite key [const1..constK] of the paper.
std::vector<Value> EqKeyOf(const SignatureContext& ctx,
                           const PredicateEntry& entry);

/// Builds the stabbing interval for a range signature from an entry's
/// constants.
IntervalIndex::Interval IntervalOf(const SignatureContext& ctx,
                                   const PredicateEntry& entry);

/// Full probe check against one entry (equality key / interval /
/// trivially true for non-indexable signatures). This is what a list
/// organization evaluates per element.
bool EntryMatchesProbe(const SignatureContext& ctx,
                       const PredicateEntry& entry, const Probe& probe);

/// Order- and type-preserving binary encoding of a value vector, used as
/// a hash-map key and as constant-table cell content.
std::string EncodeValues(const std::vector<Value>& values);

/// Inverse of EncodeValues.
Result<std::vector<Value>> DecodeValues(std::string_view data);

}  // namespace tman::predindex_internal

#endif  // TRIGGERMAN_PREDINDEX_ORG_COMMON_H_
