#ifndef TRIGGERMAN_PREDINDEX_COST_MODEL_H_
#define TRIGGERMAN_PREDINDEX_COST_MODEL_H_

#include <cstddef>
#include <string>

#include "predindex/organization.h"

namespace tman {

/// Calibration constants for the organization cost model ([Hans98b]
/// presents the tradeoff analysis this reproduces). All costs in
/// nanoseconds; defaults approximate a laptop-class machine with the
/// simulated disk latency used by the benchmarks.
struct CostModelParams {
  double compare_ns = 12;        // one constant comparison in memory
  double hash_probe_ns = 60;     // one hash-table probe
  double page_io_ns = 20000;     // one page read reaching the disk
  double row_decode_ns = 900;    // deserialize + test one table row
  size_t rows_per_page = 64;     // constant-table rows per 4 KB page
  size_t btree_fanout = 128;     // entries per index node
  double memory_per_entry = 96;  // bytes of main memory per predicate
};

/// Estimated cost of matching one token against one signature's
/// equivalence class of size n, per organization.
struct OrgCostEstimate {
  double memory_list_ns = 0;
  double memory_index_ns = 0;
  double db_table_ns = 0;
  double db_indexed_ns = 0;

  /// Cheapest organization under the estimate.
  OrgType best() const;
  std::string ToString() const;
};

/// Computes the per-token match cost estimates for an equivalence class
/// of `class_size` predicates with `expected_matches` expected matching
/// entries per probe. `buffer_hit_ratio` discounts page reads that hit
/// the buffer pool.
OrgCostEstimate EstimateMatchCost(size_t class_size, double expected_matches,
                                  double buffer_hit_ratio,
                                  const CostModelParams& params);

/// Main-memory footprint of a class of `class_size` entries (used to
/// argue when organizations 3/4 become mandatory).
double EstimateMemoryBytes(size_t class_size, const CostModelParams& params);

// --- runtime-statistics-driven re-optimization -----------------------------

/// Hysteresis knobs for the online re-optimizer. A structure is only
/// rebuilt when it has seen real traffic (min_probes in the observation
/// window), the modeled win clears min_gain_ratio, and the structure has
/// not been switched within the last cooldown_rounds rounds — three
/// independent brakes against thrashing on noisy or drifting estimates.
struct AdaptPolicy {
  uint64_t min_probes = 256;     // observation window floor, per round
  double min_gain_ratio = 1.5;   // modeled current/recommended cost ratio
  uint32_t cooldown_rounds = 2;  // rounds a freshly switched class rests
  double buffer_hit_ratio = 0.9; // page-read discount fed to the model
  bool allow_db_orgs = false;    // adaptive switching stays in memory
                                 // tiers; DB tiers keep static thresholds
  uint32_t max_switches_per_round = 64;  // bound per-round swap work
};

/// What one signature's counters said during the observation window
/// (deltas since the previous round, not lifetime totals).
struct ObservedSignatureLoad {
  size_t class_size = 0;
  uint64_t probes = 0;
  uint64_t candidates = 0;  // entries tested: fan-out numerator
  uint64_t matches = 0;     // true matches: selectivity numerator
};

/// Outcome of the cost comparison for one signature class.
struct AdaptDecision {
  OrgType current = OrgType::kMemoryList;
  OrgType recommended = OrgType::kMemoryList;
  double current_ns = 0;      // modeled per-probe cost of staying
  double recommended_ns = 0;  // modeled per-probe cost after switching
  double gain_ratio = 1.0;    // current_ns / recommended_ns
  bool beneficial = false;    // clears every hysteresis brake
};

/// Consults EstimateMatchCost with the *observed* selectivity
/// (matches/probes) instead of a static guess, and applies the
/// AdaptPolicy hysteresis. The recommended organization is the cheapest
/// tier the policy allows; `beneficial` is false when traffic is too
/// thin, the gain is under the threshold, or current == recommended.
AdaptDecision DecideOrganization(OrgType current,
                                 const ObservedSignatureLoad& load,
                                 const AdaptPolicy& policy,
                                 const CostModelParams& params);

}  // namespace tman

#endif  // TRIGGERMAN_PREDINDEX_COST_MODEL_H_
