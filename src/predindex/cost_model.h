#ifndef TRIGGERMAN_PREDINDEX_COST_MODEL_H_
#define TRIGGERMAN_PREDINDEX_COST_MODEL_H_

#include <cstddef>
#include <string>

#include "predindex/organization.h"

namespace tman {

/// Calibration constants for the organization cost model ([Hans98b]
/// presents the tradeoff analysis this reproduces). All costs in
/// nanoseconds; defaults approximate a laptop-class machine with the
/// simulated disk latency used by the benchmarks.
struct CostModelParams {
  double compare_ns = 12;        // one constant comparison in memory
  double hash_probe_ns = 60;     // one hash-table probe
  double page_io_ns = 20000;     // one page read reaching the disk
  double row_decode_ns = 900;    // deserialize + test one table row
  size_t rows_per_page = 64;     // constant-table rows per 4 KB page
  size_t btree_fanout = 128;     // entries per index node
  double memory_per_entry = 96;  // bytes of main memory per predicate
};

/// Estimated cost of matching one token against one signature's
/// equivalence class of size n, per organization.
struct OrgCostEstimate {
  double memory_list_ns = 0;
  double memory_index_ns = 0;
  double db_table_ns = 0;
  double db_indexed_ns = 0;

  /// Cheapest organization under the estimate.
  OrgType best() const;
  std::string ToString() const;
};

/// Computes the per-token match cost estimates for an equivalence class
/// of `class_size` predicates with `expected_matches` expected matching
/// entries per probe. `buffer_hit_ratio` discounts page reads that hit
/// the buffer pool.
OrgCostEstimate EstimateMatchCost(size_t class_size, double expected_matches,
                                  double buffer_hit_ratio,
                                  const CostModelParams& params);

/// Main-memory footprint of a class of `class_size` entries (used to
/// argue when organizations 3/4 become mandatory).
double EstimateMemoryBytes(size_t class_size, const CostModelParams& params);

}  // namespace tman

#endif  // TRIGGERMAN_PREDINDEX_COST_MODEL_H_
