#include "predindex/org_common.h"

#include "types/tuple.h"

namespace tman::predindex_internal {

std::vector<Value> EqKeyOf(const SignatureContext& ctx,
                           const PredicateEntry& entry) {
  std::vector<Value> key;
  key.reserve(ctx.split.eq.size());
  for (const EqConjunct& c : ctx.split.eq) {
    size_t idx = static_cast<size_t>(c.placeholder - 1);
    key.push_back(idx < entry.constants.size() ? entry.constants[idx]
                                               : Value::Null());
  }
  return key;
}

IntervalIndex::Interval IntervalOf(const SignatureContext& ctx,
                                   const PredicateEntry& entry) {
  IntervalIndex::Interval iv;
  iv.id = entry.expr_id;
  const RangeSpec& r = ctx.split.range;
  if (r.has_lo) {
    size_t idx = static_cast<size_t>(r.lo_placeholder - 1);
    if (idx < entry.constants.size()) {
      iv.lo = entry.constants[idx];
      iv.lo_inclusive = r.lo_inclusive;
    }
  }
  if (r.has_hi) {
    size_t idx = static_cast<size_t>(r.hi_placeholder - 1);
    if (idx < entry.constants.size()) {
      iv.hi = entry.constants[idx];
      iv.hi_inclusive = r.hi_inclusive;
    }
  }
  return iv;
}

bool EntryMatchesProbe(const SignatureContext& ctx,
                       const PredicateEntry& entry, const Probe& probe) {
  if (!ctx.split.eq.empty()) {
    std::vector<Value> key = EqKeyOf(ctx, entry);
    if (key.size() != probe.eq_key.size()) return false;
    for (size_t i = 0; i < key.size(); ++i) {
      // NULL constants never match (SQL semantics: x = NULL is unknown).
      if (key[i].is_null() || probe.eq_key[i].is_null()) return false;
      if (key[i] != probe.eq_key[i]) return false;
    }
    return true;
  }
  if (ctx.split.has_range) {
    if (!probe.has_range_value || probe.range_value.is_null()) return false;
    return IntervalOf(ctx, entry).Contains(probe.range_value);
  }
  return true;  // non-indexable: every instance is a candidate
}

std::string EncodeValues(const std::vector<Value>& values) {
  std::string out;
  Tuple(values).Serialize(&out);
  return out;
}

Result<std::vector<Value>> DecodeValues(std::string_view data) {
  size_t pos = 0;
  TMAN_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(data, &pos));
  return std::move(t).values();
}

}  // namespace tman::predindex_internal
