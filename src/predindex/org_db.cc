#include "predindex/org_db.h"

#include "expr/expr.h"
#include "parser/parser.h"
#include "predindex/org_common.h"

namespace tman {

using predindex_internal::DecodeValues;
using predindex_internal::EncodeValues;
using predindex_internal::EntryMatchesProbe;
using predindex_internal::EqKeyOf;

namespace {
constexpr size_t kFixedCols = 3;  // expr_id, trigger_id, next_node
}

DbOrganizationBase::DbOrganizationBase(const SignatureContext* ctx,
                                       Database* db)
    : ctx_(ctx), db_(db), table_(ctx->ConstTableName()) {}

Status DbOrganizationBase::Open() {
  if (!db_->HasTable(table_)) {
    std::vector<Field> fields;
    fields.emplace_back("expr_id", DataType::kInt);
    fields.emplace_back("trigger_id", DataType::kInt);
    fields.emplace_back("next_node", DataType::kInt);
    for (int i = 1; i <= ctx_->signature.num_constants; ++i) {
      fields.emplace_back("const_" + std::to_string(i), DataType::kVarchar);
    }
    fields.emplace_back("rest", DataType::kVarchar);
    TMAN_RETURN_IF_ERROR(db_->CreateTable(table_, Schema(fields)).status());
    return Status::OK();
  }
  // Adopt an existing constant table (e.g. after migrating organizations
  // or on restart): rebuild the exprID -> RID map.
  rid_of_.clear();
  return db_->Scan(table_, [this](const Rid& rid, const Tuple& row) {
    rid_of_[static_cast<ExprId>(row.at(0).as_int())] = rid;
    return true;
  });
}

Status DbOrganizationBase::Insert(const PredicateEntry& entry) {
  if (rid_of_.count(entry.expr_id) > 0) {
    return Status::AlreadyExists("expr " + std::to_string(entry.expr_id) +
                                 " already present");
  }
  std::vector<Value> row;
  row.reserve(kFixedCols + entry.constants.size() + 1);
  row.push_back(Value::Int(static_cast<int64_t>(entry.expr_id)));
  row.push_back(Value::Int(static_cast<int64_t>(entry.trigger_id)));
  row.push_back(Value::Int(static_cast<int64_t>(entry.next_node)));
  for (int i = 0; i < ctx_->signature.num_constants; ++i) {
    Value c = static_cast<size_t>(i) < entry.constants.size()
                  ? entry.constants[static_cast<size_t>(i)]
                  : Value::Null();
    row.push_back(Value::String(EncodeValues({c})));
  }
  row.push_back(entry.rest == nullptr
                    ? Value::Null()
                    : Value::String(ExprToString(entry.rest)));
  TMAN_ASSIGN_OR_RETURN(Rid rid, db_->Insert(table_, Tuple(std::move(row))));
  rid_of_[entry.expr_id] = rid;
  return Status::OK();
}

Status DbOrganizationBase::Remove(ExprId expr_id) {
  auto it = rid_of_.find(expr_id);
  if (it == rid_of_.end()) {
    return Status::NotFound("expr " + std::to_string(expr_id) + " not found");
  }
  TMAN_RETURN_IF_ERROR(db_->Delete(table_, it->second));
  rid_of_.erase(it);
  return Status::OK();
}

Result<PredicateEntry> DbOrganizationBase::DecodeRow(const Tuple& row) const {
  PredicateEntry e;
  e.expr_id = static_cast<ExprId>(row.at(0).as_int());
  e.trigger_id = static_cast<TriggerId>(row.at(1).as_int());
  e.next_node = static_cast<NetworkNodeId>(row.at(2).as_int());
  int m = ctx_->signature.num_constants;
  e.constants.reserve(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    const Value& cell = row.at(kFixedCols + static_cast<size_t>(i));
    TMAN_ASSIGN_OR_RETURN(std::vector<Value> decoded,
                          DecodeValues(cell.as_string()));
    e.constants.push_back(decoded.empty() ? Value::Null()
                                          : std::move(decoded[0]));
  }
  const Value& rest = row.at(kFixedCols + static_cast<size_t>(m));
  if (!rest.is_null() && !rest.as_string().empty()) {
    TMAN_ASSIGN_OR_RETURN(e.rest, ParseExpressionString(rest.as_string()));
  }
  return e;
}

Status DbOrganizationBase::ScanMatch(
    const Probe& probe,
    const std::function<void(const PredicateEntry&)>& fn) const {
  Status inner = Status::OK();
  TMAN_RETURN_IF_ERROR(db_->Scan(table_, [&](const Rid&, const Tuple& row) {
    auto entry = DecodeRow(row);
    if (!entry.ok()) {
      inner = entry.status();
      return false;
    }
    if (EntryMatchesProbe(*ctx_, *entry, probe)) fn(*entry);
    return true;
  }));
  return inner;
}

Status DbOrganizationBase::ForEach(
    const std::function<void(const PredicateEntry&)>& fn) const {
  Status inner = Status::OK();
  TMAN_RETURN_IF_ERROR(db_->Scan(table_, [&](const Rid&, const Tuple& row) {
    auto entry = DecodeRow(row);
    if (!entry.ok()) {
      inner = entry.status();
      return false;
    }
    fn(*entry);
    return true;
  }));
  return inner;
}

Status DbTableOrganization::Match(
    const Probe& probe,
    const std::function<void(const PredicateEntry&)>& fn) const {
  return ScanMatch(probe, fn);
}

DbIndexedTableOrganization::DbIndexedTableOrganization(
    const SignatureContext* ctx, Database* db)
    : DbOrganizationBase(ctx, db),
      index_name_("idx_" + ctx->ConstTableName()) {}

Status DbIndexedTableOrganization::OpenIndexed() {
  TMAN_RETURN_IF_ERROR(Open());
  if (ctx_->split.eq.empty()) return Status::OK();  // nothing to index
  std::vector<std::string> attrs;
  attrs.reserve(ctx_->split.eq.size());
  for (const EqConjunct& c : ctx_->split.eq) {
    attrs.push_back("const_" + std::to_string(c.placeholder));
  }
  Status s = db_->CreateIndex(index_name_, table_, attrs);
  if (s.ok() || s.IsAlreadyExists()) {
    indexed_ = true;
    return Status::OK();
  }
  return s;
}

Status DbIndexedTableOrganization::Match(
    const Probe& probe,
    const std::function<void(const PredicateEntry&)>& fn) const {
  if (!indexed_ || ctx_->split.eq.empty()) {
    // Non-equality signatures: disk indexing for them is the paper's
    // stated future work; scan instead.
    return ScanMatch(probe, fn);
  }
  for (const Value& v : probe.eq_key) {
    if (v.is_null()) return Status::OK();
  }
  std::vector<Value> key;
  key.reserve(probe.eq_key.size());
  for (const Value& v : probe.eq_key) {
    key.push_back(Value::String(EncodeValues({v})));
  }
  TMAN_ASSIGN_OR_RETURN(std::vector<Rid> rids,
                        db_->IndexLookup(index_name_, key));
  for (const Rid& rid : rids) {
    TMAN_ASSIGN_OR_RETURN(Tuple row, db_->Get(table_, rid));
    TMAN_ASSIGN_OR_RETURN(PredicateEntry entry, DecodeRow(row));
    fn(entry);
  }
  return Status::OK();
}

}  // namespace tman
