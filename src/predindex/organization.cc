#include "predindex/organization.h"

#include "predindex/org_db.h"
#include "predindex/org_memory.h"

namespace tman {

std::string_view OrgTypeName(OrgType type) {
  switch (type) {
    case OrgType::kMemoryList:
      return "memory-list";
    case OrgType::kMemoryIndex:
      return "memory-index";
    case OrgType::kDbTable:
      return "db-table";
    case OrgType::kDbIndexedTable:
      return "db-indexed-table";
  }
  return "?";
}

Status ConstantSetOrganization::MatchPartition(
    const Probe& probe, uint32_t partition, uint32_t num_partitions,
    const std::function<void(const PredicateEntry&)>& fn) const {
  if (num_partitions <= 1) return Match(probe, fn);
  // Round-robin assignment by exprID, as in Figure 5's partitioned
  // triggerID sets: partition p processes every num_partitions-th entry.
  return Match(probe, [&](const PredicateEntry& e) {
    if (e.expr_id % num_partitions == partition) fn(e);
  });
}

Result<std::unique_ptr<ConstantSetOrganization>> CreateOrganization(
    OrgType type, const SignatureContext* ctx, Database* db) {
  switch (type) {
    case OrgType::kMemoryList:
      return std::unique_ptr<ConstantSetOrganization>(
          new MemoryListOrganization(ctx));
    case OrgType::kMemoryIndex:
      return std::unique_ptr<ConstantSetOrganization>(
          new MemoryIndexOrganization(ctx));
    case OrgType::kDbTable: {
      if (db == nullptr) {
        return Status::InvalidArgument(
            "db-table organization requires a database");
      }
      auto org = std::make_unique<DbTableOrganization>(ctx, db);
      TMAN_RETURN_IF_ERROR(org->Open());
      return std::unique_ptr<ConstantSetOrganization>(std::move(org));
    }
    case OrgType::kDbIndexedTable: {
      if (db == nullptr) {
        return Status::InvalidArgument(
            "db-indexed-table organization requires a database");
      }
      auto org = std::make_unique<DbIndexedTableOrganization>(ctx, db);
      TMAN_RETURN_IF_ERROR(org->OpenIndexed());
      return std::unique_ptr<ConstantSetOrganization>(std::move(org));
    }
  }
  return Status::InvalidArgument("unknown organization type");
}

}  // namespace tman
