#ifndef TRIGGERMAN_PREDINDEX_INTERVAL_INDEX_H_
#define TRIGGERMAN_PREDINDEX_INTERVAL_INDEX_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "types/value.h"

namespace tman {

/// A dynamic stabbing-query index over (possibly half-open) intervals.
///
/// The paper cites Hanson & Johnson's interval skip list [Hans96b] as the
/// main-memory index for range selection predicates. This implementation
/// substitutes a structure with the same O(log n + k) expected stabbing
/// cost and simpler invariants: intervals sorted by lower bound with a
/// max-upper-bound segment tree on top, plus a small unsorted overflow
/// buffer that is merged (and tombstones compacted) once it outgrows a
/// fraction of the sorted part — so inserts are amortized O(log n).
class IntervalIndex {
 public:
  struct Interval {
    std::optional<Value> lo;  // nullopt = unbounded below
    std::optional<Value> hi;  // nullopt = unbounded above
    bool lo_inclusive = true;
    bool hi_inclusive = true;
    uint64_t id = 0;  // caller's handle (exprID)

    /// True if `v` lies inside this interval.
    bool Contains(const Value& v) const;
  };

  IntervalIndex() = default;

  void Insert(Interval interval);

  /// Marks the interval with `id` removed. Returns false if unknown.
  bool Remove(uint64_t id);

  /// Calls `fn` for every live interval containing `v`.
  void Stab(const Value& v, const std::function<void(const Interval&)>& fn) const;

  size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

 private:
  void Rebuild() const;
  void StabTree(const Value& v, size_t node, size_t lo, size_t hi,
                size_t limit, const std::function<void(const Interval&)>& fn)
      const;

  // Sorted-by-lo intervals plus segment tree of max hi (lazy-rebuilt, hence
  // mutable: Stab may trigger a rebuild of the static part).
  mutable std::vector<Interval> sorted_;
  mutable std::vector<std::optional<Value>> tree_;  // max-hi segment tree
  mutable std::vector<Interval> overflow_;
  mutable std::unordered_set<uint64_t> dead_;
  size_t live_count_ = 0;
};

}  // namespace tman

#endif  // TRIGGERMAN_PREDINDEX_INTERVAL_INDEX_H_
