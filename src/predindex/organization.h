#ifndef TRIGGERMAN_PREDINDEX_ORGANIZATION_H_
#define TRIGGERMAN_PREDINDEX_ORGANIZATION_H_

#include <functional>
#include <memory>
#include <string>

#include "expr/signature.h"
#include "predindex/predicate_entry.h"
#include "util/result.h"

namespace tman {

class Database;

/// The paper's four ways to organize the predicates in an expression
/// signature's equivalence class (§5.2). Numbers match the paper.
enum class OrgType {
  kMemoryList = 1,      // main memory list
  kMemoryIndex = 2,     // main memory index (hash / interval index)
  kDbTable = 3,         // non-indexed database table
  kDbIndexedTable = 4,  // indexed database table (clustered composite key)
};

std::string_view OrgTypeName(OrgType type);

/// Immutable per-signature context shared by an organization: the
/// signature, its indexable split, and the constant-table naming.
struct SignatureContext {
  ExpressionSignature signature;
  IndexableSplit split;
  uint64_t sig_id = 0;

  /// Name of the constant table for DB-backed organizations
  /// ("const_table_<sigID>", the paper's const_tableN).
  std::string ConstTableName() const {
    return "const_table_" + std::to_string(sig_id);
  }
};

/// Storage + probe structure for one signature's constant set and the
/// triggerID sets hanging off it (Figures 3 and 4). Implementations are
/// not internally synchronized; DataSourcePredicateIndex serializes
/// mutations and uses a read lock for matching.
class ConstantSetOrganization {
 public:
  virtual ~ConstantSetOrganization() = default;

  virtual OrgType type() const = 0;

  /// Adds one predicate instance (one constant-table row).
  virtual Status Insert(const PredicateEntry& entry) = 0;

  /// Removes the predicate instance with `expr_id`.
  virtual Status Remove(ExprId expr_id) = 0;

  /// Streams every entry whose constants match the probe (equality key
  /// and/or stabbing value per the signature's indexable split). Entries
  /// are *candidates*: the caller still tests rest-of-predicate.
  virtual Status Match(
      const Probe& probe,
      const std::function<void(const PredicateEntry&)>& fn) const = 0;

  /// Streams all entries (used when migrating between organizations).
  virtual Status ForEach(
      const std::function<void(const PredicateEntry&)>& fn) const = 0;

  /// Number of stored predicate instances.
  virtual size_t size() const = 0;

  /// Partitioned matching for condition-level concurrency (Figure 5):
  /// only entries assigned to `partition` (of `num_partitions`, round
  /// robin by insertion id) are reported. The default filters Match.
  virtual Status MatchPartition(
      const Probe& probe, uint32_t partition, uint32_t num_partitions,
      const std::function<void(const PredicateEntry&)>& fn) const;
};

/// Factory. DB-backed organizations require `db` (and create or adopt the
/// signature's constant table); memory organizations ignore it.
Result<std::unique_ptr<ConstantSetOrganization>> CreateOrganization(
    OrgType type, const SignatureContext* ctx, Database* db);

}  // namespace tman

#endif  // TRIGGERMAN_PREDINDEX_ORGANIZATION_H_
