#ifndef TRIGGERMAN_PREDINDEX_SIGNATURE_INDEX_H_
#define TRIGGERMAN_PREDINDEX_SIGNATURE_INDEX_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/database.h"
#include "predindex/organization.h"
#include "predindex/predicate_entry.h"
#include "types/schema.h"
#include "types/update_descriptor.h"
#include "util/sharded_counter.h"

namespace tman {

/// Policy for choosing (and migrating) a signature's constant-set
/// organization by equivalence-class size. The defaults mirror the
/// paper's guidance: low-overhead main-memory structures for the common
/// case, database tables (mandatory for scalability) once the class is
/// too large to pin in memory.
struct OrgPolicy {
  size_t list_max = 16;        // beyond this: main-memory index
  size_t memory_max = 100000;  // beyond this: indexed database table
  bool use_db_index = true;    // false: organization 3 instead of 4
  bool forced = false;         // pin `forced_type` regardless of size
  OrgType forced_type = OrgType::kMemoryList;
};

/// Runtime statistics of one signature's equivalence class, read by the
/// adaptive re-optimizer. probes/candidates/matches are collected with
/// sharded relaxed-atomic counters on the match path (candidates/probes
/// is the observed constant-set fan-out, matches/probes the observed
/// selectivity); `version` is the class mutation counter the epoch-style
/// organization swap validates against.
struct SignatureRuntimeStats {
  uint64_t sig_id = 0;
  std::string description;
  OrgType org = OrgType::kMemoryList;
  size_t class_size = 0;
  bool has_range = false;       // range signature: MemoryIndex promotion
                                // engages the interval skip index
  uint64_t probes = 0;          // tokens probed against this class
  uint64_t candidates = 0;      // entries tested (fan-out numerator)
  uint64_t matches = 0;         // predicate matches emitted
  uint64_t version = 0;
  uint32_t org_switches = 0;    // adaptive swaps installed so far
};

/// One entry of a data source's expression signature list (Figure 3):
/// the signature, its indexable split resolved against the source schema,
/// and the organization holding its equivalence class.
class SignatureIndexEntry {
 public:
  SignatureIndexEntry(SignatureContext ctx, Database* db, OrgPolicy policy);

  /// Resolves attribute positions and creates the initial organization.
  Status Open(const Schema& schema);

  /// Adds one predicate instance, migrating the organization if the
  /// class outgrew the current one.
  Status Insert(const PredicateEntry& entry);

  Status Remove(ExprId expr_id);

  /// Matches a token: computes the probe from the token's effective
  /// tuple, filters the event condition (opcode + changed columns),
  /// consults the organization, tests rest-of-predicate, and emits a
  /// PredicateMatch per fully matched predicate. `partition` of
  /// `num_partitions` restricts to a triggerID-set partition (Figure 5);
  /// pass (0, 1) for unpartitioned matching.
  Status Match(const UpdateDescriptor& token, uint32_t partition,
               uint32_t num_partitions,
               const std::function<void(const PredicateMatch&)>& fn) const;

  /// Maintenance matching: tests only the selection predicate (no event
  /// opcode or changed-column filtering) against a bare tuple. Used to
  /// decide which alpha memories a tuple enters or leaves when tokens
  /// update stored A-TREAT memories.
  Status MatchTuple(const Tuple& tuple, uint32_t partition,
                    uint32_t num_partitions,
                    const std::function<void(const PredicateMatch&)>& fn)
      const;

  /// Batched Match over `lanes[0..num_lanes)` of `tokens`: filters the
  /// event condition per lane, builds every surviving lane's probe in one
  /// tight pass before the organization is consulted, gathers candidates
  /// in organization order, then tests rest-of-predicates with the
  /// batched VM — one EvalBatch per distinct compiled program covering
  /// all lanes that reached it. Emission order and error behavior per
  /// lane are exactly the scalar Match's: a lane's matches stream in
  /// candidate order until its first eval error, which lands in
  /// `lane_status[lane]` and stops that lane (others continue).
  /// `fn(lane, match)` receives the token index alongside each match.
  void MatchBatch(const UpdateDescriptor* tokens, const uint32_t* lanes,
                  size_t num_lanes, uint32_t partition,
                  uint32_t num_partitions,
                  const std::function<void(size_t, const PredicateMatch&)>& fn,
                  Status* lane_status) const;

  const SignatureContext& context() const { return ctx_; }
  const ConstantSetOrganization* organization() const { return org_.get(); }
  size_t size() const { return org_ == nullptr ? 0 : org_->size(); }
  OrgType org_type() const { return org_->type(); }

  /// Candidate entries produced by the last Match calls (monotonic
  /// counter; used by tests/benches to observe selectivity).
  uint64_t candidates_tested() const { return candidates_tested_.Read(); }

  // --- adaptive re-optimization surface ---------------------------------
  //
  // The epoch-style swap protocol: the re-optimizer (1) copies the class
  // and reads `version()` under the owning stripe's SHARED lock, (2)
  // builds a fresh organization from the copy with NO lock held, and (3)
  // installs it under the stripe's EXCLUSIVE lock iff the version is
  // unchanged — readers of the old organization have drained (the
  // exclusive acquisition is the epoch barrier), the swap itself is one
  // pointer move, and a concurrent Insert/Remove aborts the install
  // (Status::Aborted) instead of losing the mutation.

  /// Class mutation counter: bumped by Insert, Remove and a successful
  /// InstallOrganization.
  uint64_t version() const { return version_.load(std::memory_order_relaxed); }

  /// Snapshot counters + organization shape (call under the stripe's
  /// shared lock so org type/size are consistent).
  SignatureRuntimeStats RuntimeStats() const;

  /// Copies every entry of the class (call under the stripe's shared
  /// lock).
  Status SnapshotEntries(std::vector<PredicateEntry>* out) const;

  /// Builds a fresh organization of `type` from a snapshot, touching no
  /// shared state — safe to run with no lock held. Only the main-memory
  /// organizations are adaptively rebuilt (database organizations keep
  /// the static size-threshold path).
  Result<std::unique_ptr<ConstantSetOrganization>> BuildOrganization(
      OrgType type, const std::vector<PredicateEntry>& entries) const;

  /// Swaps in an offside-built organization (call under the stripe's
  /// exclusive lock). Fails with Aborted when the class mutated since the
  /// snapshot (`expected_version` mismatch); on success the entry is
  /// pinned to the new type so the size-threshold migration in Insert
  /// does not immediately undo the adaptive decision.
  Status InstallOrganization(std::unique_ptr<ConstantSetOrganization> org,
                             uint64_t expected_version);

 private:
  OrgType PickOrgType(size_t size) const;
  Status MigrateTo(OrgType type);

  SignatureContext ctx_;
  Database* db_;
  OrgPolicy policy_;
  Schema schema_;
  std::unique_ptr<ConstantSetOrganization> org_;

  /// expr_id -> compiled rest-of-predicate. Database organizations store
  /// `rest` as text and re-parse it per candidate, so the program cannot
  /// ride inside their PredicateEntry copies; this table survives both
  /// that round-trip and organization migration. Mutated only under the
  /// owning stripe's exclusive lock (Insert/Remove), read under its
  /// shared lock (Match).
  std::unordered_map<ExprId, std::shared_ptr<const CompiledPredicate>>
      compiled_rest_;

  // Resolved positions in the source schema.
  std::vector<size_t> eq_fields_;
  int range_field_ = -1;
  std::vector<size_t> update_col_fields_;

  // Runtime statistics (sharded so concurrent matchers on one hot
  // signature do not serialize on a counter cache line). candidates is
  // always on (tests observe selectivity through it); probes/matches are
  // gated on runtime_stats::enabled().
  mutable ShardedCounter candidates_tested_;
  mutable ShardedCounter probes_;
  mutable ShardedCounter matches_;

  // Adaptive-swap bookkeeping. Mutated under the stripe's exclusive
  // lock; atomics so RuntimeStats can read them under the shared lock.
  std::atomic<uint64_t> version_{0};
  std::atomic<int> adaptive_pin_{0};  // 0 = none, else OrgType value
  std::atomic<uint32_t> org_switches_{0};
};

/// Per-data-source predicate index: the expression signature list of
/// Figure 3, reached from the root by hashing the data source ID.
class DataSourcePredicateIndex {
 public:
  DataSourcePredicateIndex(DataSourceId id, Schema schema, Database* db,
                           OrgPolicy policy)
      : id_(id), schema_(std::move(schema)), db_(db), policy_(policy) {}

  /// Finds the entry with this signature, creating it (and assigning
  /// `sig_id` via the callback) if unseen. `created` reports novelty.
  Result<SignatureIndexEntry*> FindOrCreate(
      const ExpressionSignature& signature, const IndexableSplit& split,
      uint64_t sig_id, bool* created);

  /// Matches a token against every signature in the list.
  Status Match(const UpdateDescriptor& token, uint32_t partition,
               uint32_t num_partitions,
               const std::function<void(const PredicateMatch&)>& fn) const;

  /// Batched Match: runs every signature's MatchBatch over the lanes
  /// still error-free, mirroring the scalar behavior that a token's first
  /// entry error stops its matching while other tokens continue.
  void MatchBatch(const UpdateDescriptor* tokens, const uint32_t* lanes,
                  size_t num_lanes, uint32_t partition,
                  uint32_t num_partitions,
                  const std::function<void(size_t, const PredicateMatch&)>& fn,
                  Status* lane_status) const;

  /// Maintenance matching (see SignatureIndexEntry::MatchTuple).
  Status MatchTuple(const Tuple& tuple, uint32_t partition,
                    uint32_t num_partitions,
                    const std::function<void(const PredicateMatch&)>& fn)
      const;

  const std::vector<std::unique_ptr<SignatureIndexEntry>>& entries() const {
    return entries_;
  }
  /// Entry by signature id (stable heap pointer; entries are never
  /// dropped), or null. The re-optimizer addresses classes this way.
  SignatureIndexEntry* FindBySigId(uint64_t sig_id) const;
  const Schema& schema() const { return schema_; }
  DataSourceId id() const { return id_; }

 private:
  DataSourceId id_;
  Schema schema_;
  Database* db_;
  OrgPolicy policy_;
  std::vector<std::unique_ptr<SignatureIndexEntry>> entries_;
  std::unordered_map<uint64_t, std::vector<size_t>> by_hash_;
};

}  // namespace tman

#endif  // TRIGGERMAN_PREDINDEX_SIGNATURE_INDEX_H_
