#ifndef TRIGGERMAN_PREDINDEX_ORG_DB_H_
#define TRIGGERMAN_PREDINDEX_ORG_DB_H_

#include <string>
#include <unordered_map>

#include "db/database.h"
#include "predindex/organization.h"

namespace tman {

/// Base for the database-backed organizations (3 and 4): the equivalence
/// class lives in the constant table const_table_<sigID> with columns
///   (expr_id int, trigger_id int, next_node int,
///    const_1 varchar ... const_m varchar, rest varchar)
/// exactly the paper's denormalized layout (§5.1 — deliberately not 3NF
/// so matching needs no joins). Constant cells hold a type-preserving
/// binary encoding; rest holds the bound rest-of-predicate as text,
/// re-parsed when a row is materialized.
class DbOrganizationBase : public ConstantSetOrganization {
 public:
  DbOrganizationBase(const SignatureContext* ctx, Database* db);

  Status Insert(const PredicateEntry& entry) override;
  Status Remove(ExprId expr_id) override;
  Status ForEach(const std::function<void(const PredicateEntry&)>& fn)
      const override;
  size_t size() const override { return rid_of_.size(); }

  /// Creates the constant table if it does not exist yet, and reloads the
  /// exprID -> RID map if it does. Must be called once before use.
  Status Open();

 protected:
  Result<PredicateEntry> DecodeRow(const Tuple& row) const;
  Status ScanMatch(const Probe& probe,
                   const std::function<void(const PredicateEntry&)>& fn) const;

  const SignatureContext* ctx_;
  Database* db_;
  std::string table_;
  std::unordered_map<ExprId, Rid> rid_of_;
};

/// Organization 3: non-indexed database table. Matching scans the table
/// (buffer-pool + simulated disk costs apply), testing each row.
class DbTableOrganization : public DbOrganizationBase {
 public:
  using DbOrganizationBase::DbOrganizationBase;

  OrgType type() const override { return OrgType::kDbTable; }
  Status Match(const Probe& probe,
               const std::function<void(const PredicateEntry&)>& fn)
      const override;
};

/// Organization 4: indexed database table. A clustered composite-key
/// index on [const_1..const_K] answers equality probes with O(log n)
/// page reads; matching rows cluster on adjacent leaf entries ("retrieved
/// together quickly without doing random I/O"). Signatures whose
/// indexable part is not an equality composite fall back to scanning —
/// the paper leaves non-equality disk indexing as future work [Kony98].
class DbIndexedTableOrganization : public DbOrganizationBase {
 public:
  DbIndexedTableOrganization(const SignatureContext* ctx, Database* db);

  OrgType type() const override { return OrgType::kDbIndexedTable; }
  Status Match(const Probe& probe,
               const std::function<void(const PredicateEntry&)>& fn)
      const override;

  /// Also creates the composite index when the signature is equality-
  /// indexable.
  Status OpenIndexed();

 private:
  std::string index_name_;
  bool indexed_ = false;
};

}  // namespace tman

#endif  // TRIGGERMAN_PREDINDEX_ORG_DB_H_
