#ifndef TRIGGERMAN_PREDINDEX_ORG_MEMORY_H_
#define TRIGGERMAN_PREDINDEX_ORG_MEMORY_H_

#include <unordered_map>
#include <vector>

#include "predindex/interval_index.h"
#include "predindex/organization.h"

namespace tman {

/// Organization 1: a plain main-memory list. O(n) match, near-zero
/// constant factors and memory overhead — the paper's choice for tiny
/// equivalence classes.
class MemoryListOrganization : public ConstantSetOrganization {
 public:
  explicit MemoryListOrganization(const SignatureContext* ctx) : ctx_(ctx) {}

  OrgType type() const override { return OrgType::kMemoryList; }
  Status Insert(const PredicateEntry& entry) override;
  Status Remove(ExprId expr_id) override;
  Status Match(const Probe& probe,
               const std::function<void(const PredicateEntry&)>& fn)
      const override;
  Status ForEach(const std::function<void(const PredicateEntry&)>& fn)
      const override;
  size_t size() const override { return entries_.size(); }

 private:
  const SignatureContext* ctx_;
  std::vector<PredicateEntry> entries_;
};

/// Organization 2: a main-memory index. Equality signatures hash the
/// composite constant key to its triggerID set — the fully normalized
/// constant-set / triggerID-set structure of Figure 4, which also gives
/// common sub-expression elimination (each distinct constant is stored
/// and probed once no matter how many triggers share it). Range
/// signatures use the interval index. Non-indexable signatures degrade
/// to the list behavior.
class MemoryIndexOrganization : public ConstantSetOrganization {
 public:
  explicit MemoryIndexOrganization(const SignatureContext* ctx) : ctx_(ctx) {}

  OrgType type() const override { return OrgType::kMemoryIndex; }
  Status Insert(const PredicateEntry& entry) override;
  Status Remove(ExprId expr_id) override;
  Status Match(const Probe& probe,
               const std::function<void(const PredicateEntry&)>& fn)
      const override;
  Status ForEach(const std::function<void(const PredicateEntry&)>& fn)
      const override;
  size_t size() const override { return size_; }

  /// Number of distinct constant keys (size of the constant set proper);
  /// exposed for the Figure-4 common-sub-expression experiments.
  size_t num_distinct_constants() const { return eq_buckets_.size(); }

 private:
  const SignatureContext* ctx_;
  size_t size_ = 0;

  // Equality: encoded constant key -> triggerID set (the entries sharing
  // that constant tuple).
  std::unordered_map<std::string, std::vector<PredicateEntry>> eq_buckets_;
  std::unordered_map<ExprId, std::string> eq_key_of_;

  // Range: stabbing index + payload by exprID.
  IntervalIndex intervals_;
  std::unordered_map<ExprId, PredicateEntry> by_id_;

  // Non-indexable fallback.
  std::vector<PredicateEntry> plain_;
};

}  // namespace tman

#endif  // TRIGGERMAN_PREDINDEX_ORG_MEMORY_H_
