#ifndef TRIGGERMAN_PREDINDEX_PREDICATE_INDEX_H_
#define TRIGGERMAN_PREDINDEX_PREDICATE_INDEX_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "predindex/signature_index.h"

namespace tman {

/// Counters exposed by the predicate index.
struct PredicateIndexStats {
  uint64_t tokens_processed = 0;
  uint64_t matches_emitted = 0;
  uint64_t num_signatures = 0;
  uint64_t num_predicates = 0;
};

/// Per-stripe occupancy, for the console's live inspection and for
/// load-balance checks in tests.
struct PredicateIndexStripeStats {
  size_t num_sources = 0;
  size_t num_signatures = 0;
  size_t num_predicates = 0;
};

/// One signature's runtime statistics with its home data source — the
/// unit the adaptive re-optimizer reasons about.
struct SignatureStatsReport {
  DataSourceId source = 0;
  SignatureRuntimeStats stats;
};

/// What to register for one selection predicate of a trigger (§5.1 step 5).
struct PredicateSpec {
  DataSourceId data_source = 0;
  OpCode op = OpCode::kInsertOrUpdate;
  std::vector<std::string> update_columns;  // sorted lowercase, may be empty
  ExprPtr predicate;                        // may be null (no condition)
  TriggerId trigger_id = 0;
  NetworkNodeId next_node = 0;
};

/// Outcome of AddPredicate, used to maintain the trigger catalogs.
struct AddPredicateInfo {
  ExprId expr_id = 0;
  uint64_t sig_id = 0;
  bool new_signature = false;
  OrgType org = OrgType::kMemoryList;
  size_t class_size = 0;
  std::string signature_desc;
  std::vector<Value> constants;
};

/// The root of the selection predicate index (Figure 3): a hash table on
/// data source ID leading to per-source signature lists, constant sets
/// and triggerID sets. Takes an update descriptor and identifies all
/// predicates matching it.
///
/// Thread-safe and striped for scale: the root hash table is split into
/// `num_stripes` stripes by data source ID, each under its own
/// shared_mutex. Matching takes only its stripe's read lock; trigger
/// create/drop takes only its stripe's write lock, so a slow trigger
/// install (predicate generalization, constant-table inserts) stalls
/// matching on one stripe instead of serializing every driver (token-
/// level concurrency, §6, without a global serialization point).
class PredicateIndex {
 public:
  /// `db` hosts constant tables for organizations 3/4; may be null when
  /// the policy never selects them. `num_stripes` = 0 picks the default
  /// (16 — enough that per-source workloads spread across CI core
  /// counts).
  explicit PredicateIndex(Database* db = nullptr, OrgPolicy policy = OrgPolicy(),
                          uint32_t num_stripes = 0);

  PredicateIndex(const PredicateIndex&) = delete;
  PredicateIndex& operator=(const PredicateIndex&) = delete;

  Status RegisterDataSource(DataSourceId id, const Schema& schema);
  bool HasDataSource(DataSourceId id) const;

  /// Generalizes the predicate, dedupes its signature, stores the
  /// constants + rest, and returns catalog bookkeeping info.
  Result<AddPredicateInfo> AddPredicate(const PredicateSpec& spec);

  /// Removes one predicate instance (by the exprID AddPredicate assigned).
  Status RemovePredicate(ExprId expr_id);

  /// Finds every predicate matching the token; appends PredicateMatches.
  Status Match(const UpdateDescriptor& token,
               std::vector<PredicateMatch>* out) const;

  /// Streaming + partitioned variant (condition-level concurrency).
  Status MatchPartitioned(
      const UpdateDescriptor& token, uint32_t partition,
      uint32_t num_partitions,
      const std::function<void(const PredicateMatch&)>& fn) const;

  /// Batched matching: one call covers a whole token batch. Tokens are
  /// grouped by data source, so each (stripe, source) group pays one
  /// shared-lock acquisition and one probe-key pass instead of one per
  /// token, and rest-of-predicate tests run through the batched VM.
  /// `fn(lane, match)` receives the token's index in `tokens` with each
  /// match. Per-token outcomes land in `per_token` (optional; resized to
  /// tokens.size()): lane i's status is exactly what the scalar
  /// MatchPartitioned call for tokens[i] would have returned, and a
  /// failing token stops matching (as in the scalar path) without
  /// disturbing the rest of the batch. Returns the first per-token error
  /// for callers that only need one.
  Status MatchBatch(
      const std::vector<UpdateDescriptor>& tokens, uint32_t partition,
      uint32_t num_partitions,
      const std::function<void(size_t, const PredicateMatch&)>& fn,
      std::vector<Status>* per_token = nullptr) const;

  /// Maintenance matching: selection predicates only (no event filters),
  /// against a bare tuple of the given source. Drives A-TREAT alpha
  /// memory upkeep for updates and deletes.
  Status MatchMaintenance(
      DataSourceId data_source, const Tuple& tuple, uint32_t partition,
      uint32_t num_partitions,
      const std::function<void(const PredicateMatch&)>& fn) const;

  PredicateIndexStats stats() const;

  uint32_t num_stripes() const {
    return static_cast<uint32_t>(stripes_.size());
  }
  uint32_t StripeOf(DataSourceId id) const;
  std::vector<PredicateIndexStripeStats> stripe_stats() const;

  /// Per-source access for tests, benches and the catalog.
  const DataSourcePredicateIndex* source(DataSourceId id) const;

  // --- adaptive re-optimization surface ---------------------------------

  /// Runtime statistics of every signature (one shared-lock pass per
  /// stripe).
  std::vector<SignatureStatsReport> SignatureStats() const;

  /// Entry lookup by (source, sig id). The returned pointer is stable
  /// (entries are heap-allocated and never dropped); null when unknown.
  /// Reading or mutating through it still requires the stripe lock —
  /// use WithStripeShared / WithStripeExclusive.
  SignatureIndexEntry* FindSignature(DataSourceId source,
                                     uint64_t sig_id) const;

  /// Runs `fn` under the stripe lock that guards `source`'s signature
  /// entries: shared for snapshotting (concurrent matching continues),
  /// exclusive for the organization swap (matchers on the old
  /// organization have drained once it is acquired — the epoch barrier
  /// of the swap protocol).
  Status WithStripeShared(DataSourceId source,
                          const std::function<Status()>& fn) const;
  Status WithStripeExclusive(DataSourceId source,
                             const std::function<Status()>& fn);

 private:
  struct Stripe {
    mutable std::shared_mutex mutex;
    std::unordered_map<DataSourceId,
                       std::unique_ptr<DataSourcePredicateIndex>>
        sources;
  };

  Stripe& StripeFor(DataSourceId id) const;

  Database* db_;
  OrgPolicy policy_;

  std::vector<std::unique_ptr<Stripe>> stripes_;

  // Control-plane map from exprID to its home (data source + entry).
  // Touched only by AddPredicate/RemovePredicate; entry pointers are
  // stable (entries are heap-allocated and sources are never dropped).
  mutable std::mutex home_mutex_;
  std::unordered_map<ExprId, std::pair<DataSourceId, SignatureIndexEntry*>>
      predicate_home_;

  std::atomic<uint64_t> next_expr_id_{1};
  std::atomic<uint64_t> next_sig_id_{1};

  mutable std::atomic<uint64_t> tokens_processed_{0};
  mutable std::atomic<uint64_t> matches_emitted_{0};
};

}  // namespace tman

#endif  // TRIGGERMAN_PREDINDEX_PREDICATE_INDEX_H_
