#ifndef TRIGGERMAN_PREDINDEX_PREDICATE_INDEX_H_
#define TRIGGERMAN_PREDINDEX_PREDICATE_INDEX_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "predindex/signature_index.h"

namespace tman {

/// Counters exposed by the predicate index.
struct PredicateIndexStats {
  uint64_t tokens_processed = 0;
  uint64_t matches_emitted = 0;
  uint64_t num_signatures = 0;
  uint64_t num_predicates = 0;
};

/// What to register for one selection predicate of a trigger (§5.1 step 5).
struct PredicateSpec {
  DataSourceId data_source = 0;
  OpCode op = OpCode::kInsertOrUpdate;
  std::vector<std::string> update_columns;  // sorted lowercase, may be empty
  ExprPtr predicate;                        // may be null (no condition)
  TriggerId trigger_id = 0;
  NetworkNodeId next_node = 0;
};

/// Outcome of AddPredicate, used to maintain the trigger catalogs.
struct AddPredicateInfo {
  ExprId expr_id = 0;
  uint64_t sig_id = 0;
  bool new_signature = false;
  OrgType org = OrgType::kMemoryList;
  size_t class_size = 0;
  std::string signature_desc;
  std::vector<Value> constants;
};

/// The root of the selection predicate index (Figure 3): a hash table on
/// data source ID leading to per-source signature lists, constant sets
/// and triggerID sets. Takes an update descriptor and identifies all
/// predicates matching it.
///
/// Thread-safe: matching takes a shared lock, trigger creation/removal an
/// exclusive one — multiple driver threads match tokens concurrently
/// (token-level concurrency, §6).
class PredicateIndex {
 public:
  /// `db` hosts constant tables for organizations 3/4; may be null when
  /// the policy never selects them.
  explicit PredicateIndex(Database* db = nullptr,
                          OrgPolicy policy = OrgPolicy());

  PredicateIndex(const PredicateIndex&) = delete;
  PredicateIndex& operator=(const PredicateIndex&) = delete;

  Status RegisterDataSource(DataSourceId id, const Schema& schema);
  bool HasDataSource(DataSourceId id) const;

  /// Generalizes the predicate, dedupes its signature, stores the
  /// constants + rest, and returns catalog bookkeeping info.
  Result<AddPredicateInfo> AddPredicate(const PredicateSpec& spec);

  /// Removes one predicate instance (by the exprID AddPredicate assigned).
  Status RemovePredicate(ExprId expr_id);

  /// Finds every predicate matching the token; appends PredicateMatches.
  Status Match(const UpdateDescriptor& token,
               std::vector<PredicateMatch>* out) const;

  /// Streaming + partitioned variant (condition-level concurrency).
  Status MatchPartitioned(
      const UpdateDescriptor& token, uint32_t partition,
      uint32_t num_partitions,
      const std::function<void(const PredicateMatch&)>& fn) const;

  /// Maintenance matching: selection predicates only (no event filters),
  /// against a bare tuple of the given source. Drives A-TREAT alpha
  /// memory upkeep for updates and deletes.
  Status MatchMaintenance(
      DataSourceId data_source, const Tuple& tuple, uint32_t partition,
      uint32_t num_partitions,
      const std::function<void(const PredicateMatch&)>& fn) const;

  PredicateIndexStats stats() const;

  /// Per-source access for tests, benches and the catalog.
  const DataSourcePredicateIndex* source(DataSourceId id) const;

 private:
  Database* db_;
  OrgPolicy policy_;

  mutable std::shared_mutex mutex_;
  std::unordered_map<DataSourceId, std::unique_ptr<DataSourcePredicateIndex>>
      sources_;
  std::unordered_map<ExprId, std::pair<DataSourceId, SignatureIndexEntry*>>
      predicate_home_;
  uint64_t next_expr_id_ = 1;
  uint64_t next_sig_id_ = 1;

  mutable std::atomic<uint64_t> tokens_processed_{0};
  mutable std::atomic<uint64_t> matches_emitted_{0};
};

}  // namespace tman

#endif  // TRIGGERMAN_PREDINDEX_PREDICATE_INDEX_H_
