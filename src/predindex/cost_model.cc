#include "predindex/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tman {

OrgType OrgCostEstimate::best() const {
  OrgType t = OrgType::kMemoryList;
  double c = memory_list_ns;
  if (memory_index_ns < c) {
    c = memory_index_ns;
    t = OrgType::kMemoryIndex;
  }
  if (db_table_ns < c) {
    c = db_table_ns;
    t = OrgType::kDbTable;
  }
  if (db_indexed_ns < c) {
    c = db_indexed_ns;
    t = OrgType::kDbIndexedTable;
  }
  return t;
}

std::string OrgCostEstimate::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "list=%.0fns mm-index=%.0fns db-table=%.0fns db-index=%.0fns",
                memory_list_ns, memory_index_ns, db_table_ns, db_indexed_ns);
  return buf;
}

OrgCostEstimate EstimateMatchCost(size_t class_size, double expected_matches,
                                  double buffer_hit_ratio,
                                  const CostModelParams& p) {
  OrgCostEstimate est;
  double n = static_cast<double>(std::max<size_t>(class_size, 1));
  double k = std::max(expected_matches, 0.0);
  double io = p.page_io_ns * (1.0 - buffer_hit_ratio);

  // 1. Main-memory list: compare every entry.
  est.memory_list_ns = n * p.compare_ns;

  // 2. Main-memory index: one hash probe plus the matching triggerID set.
  est.memory_index_ns = p.hash_probe_ns + k * p.compare_ns;

  // 3. Non-indexed table: read and test every page of the table.
  double pages = std::ceil(n / static_cast<double>(p.rows_per_page));
  est.db_table_ns = pages * io + n * p.row_decode_ns;

  // 4. Indexed table: descend the B+-tree, then read the clustered run of
  // matching rows.
  double height =
      std::max(1.0, std::ceil(std::log(n) /
                              std::log(static_cast<double>(p.btree_fanout))));
  double match_pages =
      std::ceil(std::max(k, 1.0) / static_cast<double>(p.rows_per_page));
  est.db_indexed_ns =
      (height + match_pages) * io + std::max(k, 1.0) * p.row_decode_ns;

  return est;
}

double EstimateMemoryBytes(size_t class_size, const CostModelParams& p) {
  return static_cast<double>(class_size) * p.memory_per_entry;
}

namespace {

double CostOf(const OrgCostEstimate& est, OrgType t) {
  switch (t) {
    case OrgType::kMemoryList:
      return est.memory_list_ns;
    case OrgType::kMemoryIndex:
      return est.memory_index_ns;
    case OrgType::kDbTable:
      return est.db_table_ns;
    case OrgType::kDbIndexedTable:
      return est.db_indexed_ns;
  }
  return est.memory_list_ns;
}

}  // namespace

AdaptDecision DecideOrganization(OrgType current,
                                 const ObservedSignatureLoad& load,
                                 const AdaptPolicy& policy,
                                 const CostModelParams& params) {
  AdaptDecision d;
  d.current = current;
  d.recommended = current;
  if (load.probes == 0) return d;

  // Observed per-probe selectivity replaces the install-time guess. The
  // list organization tests the whole class per probe regardless, so the
  // interesting number is how many entries a keyed organization would
  // touch — the true matches per probe bound it from below.
  double expected_matches = static_cast<double>(load.matches) /
                            static_cast<double>(load.probes);
  OrgCostEstimate est = EstimateMatchCost(load.class_size, expected_matches,
                                          policy.buffer_hit_ratio, params);

  OrgType candidates[] = {OrgType::kMemoryList, OrgType::kMemoryIndex,
                          OrgType::kDbTable, OrgType::kDbIndexedTable};
  OrgType best = current;
  double best_ns = CostOf(est, current);
  for (OrgType t : candidates) {
    if (!policy.allow_db_orgs &&
        (t == OrgType::kDbTable || t == OrgType::kDbIndexedTable)) {
      continue;
    }
    double c = CostOf(est, t);
    if (c < best_ns) {
      best = t;
      best_ns = c;
    }
  }

  d.current_ns = CostOf(est, current);
  d.recommended = best;
  d.recommended_ns = best_ns;
  d.gain_ratio = best_ns > 0 ? d.current_ns / best_ns : 1.0;
  d.beneficial = best != current && load.probes >= policy.min_probes &&
                 d.gain_ratio >= policy.min_gain_ratio;
  return d;
}

}  // namespace tman
