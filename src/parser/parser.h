#ifndef TRIGGERMAN_PARSER_PARSER_H_
#define TRIGGERMAN_PARSER_PARSER_H_

#include <string_view>
#include <vector>

#include "parser/ast.h"
#include "parser/lexer.h"
#include "util/result.h"

namespace tman {

/// Parses one TriggerMan command:
///   create trigger <name> [in <set>] from <src> [<var>], ...
///       [on <event>] [when <cond>] [group by <cols>] [having <cond>]
///       do <action>
///   create trigger set <name> ['comments']
///   drop trigger <name>
///   enable|disable trigger [set] <name>
///   define data source <name> (<attr> <type>[(n)], ...)
/// Clauses of create trigger may appear in any order before `do` (the
/// paper itself writes `on` both before and after `from`).
Result<Command> ParseCommand(std::string_view text);

/// Parses a semicolon-separated script of commands.
Result<std::vector<Command>> ParseScript(std::string_view text);

/// Parses a standalone scalar/boolean expression (used by tests and by
/// MiniDB's SQL WHERE clauses).
Result<ExprPtr> ParseExpressionString(std::string_view text);

/// Expression parser entry over an existing lexer; consumes the tokens of
/// one expression and leaves the lexer at the first token past it.
Result<ExprPtr> ParseExpression(Lexer* lex);

}  // namespace tman

#endif  // TRIGGERMAN_PARSER_PARSER_H_
