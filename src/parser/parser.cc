#include "parser/parser.h"

#include "types/data_type.h"
#include "util/string_util.h"

namespace tman {

namespace {

/// Clause keywords that terminate sub-parses inside create trigger.
bool IsClauseKeyword(const Token& t) {
  return t.IsKeyword("from") || t.IsKeyword("on") || t.IsKeyword("when") ||
         t.IsKeyword("group") || t.IsKeyword("having") || t.IsKeyword("do") ||
         t.IsKeyword("in");
}

Status Expect(Lexer* lex, TokenKind kind, std::string_view what) {
  if (!lex->Peek().Is(kind)) {
    return Status::ParseError("expected " + std::string(what) + " " +
                              lex->Where());
  }
  return lex->Next().status();
}

Result<std::string> ExpectIdentifier(Lexer* lex, std::string_view what) {
  if (!lex->Peek().Is(TokenKind::kIdentifier)) {
    return Status::ParseError("expected " + std::string(what) + " " +
                              lex->Where());
  }
  TMAN_ASSIGN_OR_RETURN(Token t, lex->Next());
  return t.text;
}

Status ExpectKeyword(Lexer* lex, std::string_view kw) {
  if (!lex->Peek().IsKeyword(kw)) {
    return Status::ParseError("expected '" + std::string(kw) + "' " +
                              lex->Where());
  }
  return lex->Next().status();
}

bool ConsumeKeyword(Lexer* lex, std::string_view kw) {
  if (lex->Peek().IsKeyword(kw)) {
    (void)lex->Next();
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Expression grammar (precedence climbing):
//   or -> and (OR and)*
//   and -> not (AND not)*
//   not -> NOT not | cmp
//   cmp -> add [(= | <> | < | <= | > | >=) add]
//   add -> mul ((+|-) mul)*
//   mul -> unary ((*|/) unary)*
//   unary -> - unary | primary
//   primary -> literal | ident[.ident] | ident(args) | (or)
// ---------------------------------------------------------------------------

Result<ExprPtr> ParseOr(Lexer* lex);

Result<ExprPtr> ParsePrimary(Lexer* lex) {
  const Token& t = lex->Peek();
  switch (t.kind) {
    case TokenKind::kIntLiteral: {
      TMAN_ASSIGN_OR_RETURN(Token tok, lex->Next());
      return MakeLiteral(Value::Int(tok.int_value));
    }
    case TokenKind::kFloatLiteral: {
      TMAN_ASSIGN_OR_RETURN(Token tok, lex->Next());
      return MakeLiteral(Value::Float(tok.float_value));
    }
    case TokenKind::kStringLiteral: {
      TMAN_ASSIGN_OR_RETURN(Token tok, lex->Next());
      return MakeLiteral(Value::String(tok.text));
    }
    case TokenKind::kLParen: {
      TMAN_RETURN_IF_ERROR(Expect(lex, TokenKind::kLParen, "'('"));
      TMAN_ASSIGN_OR_RETURN(ExprPtr e, ParseOr(lex));
      TMAN_RETURN_IF_ERROR(Expect(lex, TokenKind::kRParen, "')'"));
      return e;
    }
    case TokenKind::kIdentifier: {
      // Clause keywords are reserved: a bare `do`/`when`/... here means a
      // clause boundary was reached where an expression was required.
      if (IsClauseKeyword(t)) {
        return Status::ParseError("expected expression " + lex->Where());
      }
      if (t.IsKeyword("null")) {
        (void)lex->Next();
        return MakeLiteral(Value::Null());
      }
      if (t.IsKeyword("true")) {
        (void)lex->Next();
        return MakeLiteral(Value::Int(1));
      }
      if (t.IsKeyword("false")) {
        (void)lex->Next();
        return MakeLiteral(Value::Int(0));
      }
      TMAN_ASSIGN_OR_RETURN(Token name, lex->Next());
      if (lex->Peek().Is(TokenKind::kLParen)) {
        // Function call.
        (void)lex->Next();
        std::vector<ExprPtr> args;
        if (!lex->Peek().Is(TokenKind::kRParen)) {
          while (true) {
            TMAN_ASSIGN_OR_RETURN(ExprPtr arg, ParseOr(lex));
            args.push_back(std::move(arg));
            if (lex->Peek().Is(TokenKind::kComma)) {
              (void)lex->Next();
              continue;
            }
            break;
          }
        }
        TMAN_RETURN_IF_ERROR(Expect(lex, TokenKind::kRParen, "')'"));
        return MakeFunctionCall(ToLower(name.text), std::move(args));
      }
      if (lex->Peek().Is(TokenKind::kDot)) {
        (void)lex->Next();
        TMAN_ASSIGN_OR_RETURN(std::string attr,
                              ExpectIdentifier(lex, "attribute name"));
        return MakeColumnRef(ToLower(name.text), ToLower(attr));
      }
      return MakeColumnRef("", ToLower(name.text));
    }
    default:
      return Status::ParseError("expected expression " + lex->Where());
  }
}

Result<ExprPtr> ParseUnary(Lexer* lex) {
  if (lex->Peek().Is(TokenKind::kMinus)) {
    (void)lex->Next();
    TMAN_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary(lex));
    // Fold negation of numeric literals so "-5" is a constant, not an op;
    // signature extraction then treats it as one constant.
    if (e->kind == ExprKind::kLiteral && e->literal.is_int()) {
      return MakeLiteral(Value::Int(-e->literal.as_int()));
    }
    if (e->kind == ExprKind::kLiteral && e->literal.is_float()) {
      return MakeLiteral(Value::Float(-e->literal.as_float()));
    }
    return MakeUnary(UnOp::kNeg, std::move(e));
  }
  return ParsePrimary(lex);
}

Result<ExprPtr> ParseMul(Lexer* lex) {
  TMAN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary(lex));
  while (lex->Peek().Is(TokenKind::kStar) ||
         lex->Peek().Is(TokenKind::kSlash)) {
    TMAN_ASSIGN_OR_RETURN(Token op, lex->Next());
    TMAN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary(lex));
    lhs = MakeBinary(op.Is(TokenKind::kStar) ? BinOp::kMul : BinOp::kDiv,
                     std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> ParseAdd(Lexer* lex) {
  TMAN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMul(lex));
  while (lex->Peek().Is(TokenKind::kPlus) ||
         lex->Peek().Is(TokenKind::kMinus)) {
    TMAN_ASSIGN_OR_RETURN(Token op, lex->Next());
    TMAN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMul(lex));
    lhs = MakeBinary(op.Is(TokenKind::kPlus) ? BinOp::kAdd : BinOp::kSub,
                     std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> ParseCmp(Lexer* lex) {
  TMAN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdd(lex));
  BinOp op;
  switch (lex->Peek().kind) {
    case TokenKind::kEq:
      op = BinOp::kEq;
      break;
    case TokenKind::kNe:
      op = BinOp::kNe;
      break;
    case TokenKind::kLt:
      op = BinOp::kLt;
      break;
    case TokenKind::kLe:
      op = BinOp::kLe;
      break;
    case TokenKind::kGt:
      op = BinOp::kGt;
      break;
    case TokenKind::kGe:
      op = BinOp::kGe;
      break;
    default:
      return lhs;
  }
  (void)lex->Next();
  TMAN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdd(lex));
  return MakeBinary(op, std::move(lhs), std::move(rhs));
}

Result<ExprPtr> ParseNot(Lexer* lex) {
  if (lex->Peek().IsKeyword("not")) {
    (void)lex->Next();
    TMAN_ASSIGN_OR_RETURN(ExprPtr e, ParseNot(lex));
    return MakeUnary(UnOp::kNot, std::move(e));
  }
  return ParseCmp(lex);
}

Result<ExprPtr> ParseAnd(Lexer* lex) {
  TMAN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot(lex));
  while (lex->Peek().IsKeyword("and")) {
    (void)lex->Next();
    TMAN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot(lex));
    lhs = MakeBinary(BinOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> ParseOr(Lexer* lex) {
  TMAN_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd(lex));
  while (lex->Peek().IsKeyword("or")) {
    (void)lex->Next();
    TMAN_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd(lex));
    lhs = MakeBinary(BinOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

// ---------------------------------------------------------------------------
// Command clauses
// ---------------------------------------------------------------------------

Result<std::vector<TupleVarDecl>> ParseFromList(Lexer* lex) {
  std::vector<TupleVarDecl> out;
  while (true) {
    TMAN_ASSIGN_OR_RETURN(std::string source,
                          ExpectIdentifier(lex, "data source name"));
    TupleVarDecl decl;
    decl.source = ToLower(source);
    ConsumeKeyword(lex, "as");
    if (lex->Peek().Is(TokenKind::kIdentifier) &&
        !IsClauseKeyword(lex->Peek())) {
      TMAN_ASSIGN_OR_RETURN(Token var, lex->Next());
      decl.var = ToLower(var.text);
    } else {
      decl.var = decl.source;
    }
    out.push_back(std::move(decl));
    if (lex->Peek().Is(TokenKind::kComma)) {
      (void)lex->Next();
      continue;
    }
    return out;
  }
}

Result<EventSpec> ParseEventSpec(Lexer* lex) {
  EventSpec spec;
  TMAN_ASSIGN_OR_RETURN(std::string op,
                        ExpectIdentifier(lex, "event operation"));
  if (EqualsIgnoreCase(op, "insert")) {
    spec.op = OpCode::kInsert;
  } else if (EqualsIgnoreCase(op, "delete")) {
    spec.op = OpCode::kDelete;
  } else if (EqualsIgnoreCase(op, "update")) {
    spec.op = OpCode::kUpdate;
  } else {
    return Status::ParseError("unknown event operation '" + op + "' " +
                              lex->Where());
  }
  // Optional column list: on update(emp.salary, emp.name)
  if (lex->Peek().Is(TokenKind::kLParen)) {
    (void)lex->Next();
    while (true) {
      TMAN_ASSIGN_OR_RETURN(std::string first,
                            ExpectIdentifier(lex, "column reference"));
      std::string column = ToLower(first);
      if (lex->Peek().Is(TokenKind::kDot)) {
        (void)lex->Next();
        TMAN_ASSIGN_OR_RETURN(std::string attr,
                              ExpectIdentifier(lex, "attribute"));
        if (spec.target.empty()) spec.target = column;
        column += "." + ToLower(attr);
      }
      spec.columns.push_back(column);
      if (lex->Peek().Is(TokenKind::kComma)) {
        (void)lex->Next();
        continue;
      }
      break;
    }
    TMAN_RETURN_IF_ERROR(Expect(lex, TokenKind::kRParen, "')'"));
  }
  // Optional explicit target: "to house" / "from house" / "of house".
  if (lex->Peek().IsKeyword("to") || lex->Peek().IsKeyword("of") ||
      (lex->Peek().IsKeyword("from") && spec.op == OpCode::kDelete)) {
    (void)lex->Next();
    TMAN_ASSIGN_OR_RETURN(std::string target,
                          ExpectIdentifier(lex, "event target"));
    spec.target = ToLower(target);
  }
  return spec;
}

Result<ActionSpec> ParseAction(Lexer* lex) {
  ActionSpec action;
  if (ConsumeKeyword(lex, "execsql")) {
    action.kind = ActionKind::kExecSql;
    if (!lex->Peek().Is(TokenKind::kStringLiteral)) {
      return Status::ParseError("execSQL expects a string literal " +
                                lex->Where());
    }
    TMAN_ASSIGN_OR_RETURN(Token sql, lex->Next());
    action.sql = sql.text;
    return action;
  }
  if (ConsumeKeyword(lex, "raise")) {
    TMAN_RETURN_IF_ERROR(ExpectKeyword(lex, "event"));
    action.kind = ActionKind::kRaiseEvent;
    TMAN_ASSIGN_OR_RETURN(std::string name,
                          ExpectIdentifier(lex, "event name"));
    action.event_name = name;  // event names keep their case
    if (lex->Peek().Is(TokenKind::kLParen)) {
      (void)lex->Next();
      if (!lex->Peek().Is(TokenKind::kRParen)) {
        while (true) {
          TMAN_ASSIGN_OR_RETURN(ExprPtr arg, ParseOr(lex));
          action.event_args.push_back(std::move(arg));
          if (lex->Peek().Is(TokenKind::kComma)) {
            (void)lex->Next();
            continue;
          }
          break;
        }
      }
      TMAN_RETURN_IF_ERROR(Expect(lex, TokenKind::kRParen, "')'"));
    }
    return action;
  }
  return Status::ParseError(
      "expected action (execSQL or raise event) " + lex->Where());
}

Result<Command> ParseCreateTrigger(Lexer* lex, std::string_view text) {
  CreateTriggerCmd cmd;
  cmd.original_text = std::string(Trim(text));
  TMAN_ASSIGN_OR_RETURN(std::string name,
                        ExpectIdentifier(lex, "trigger name"));
  cmd.name = name;
  bool saw_do = false;
  while (!saw_do) {
    const Token& t = lex->Peek();
    if (t.IsKeyword("in")) {
      (void)lex->Next();
      TMAN_ASSIGN_OR_RETURN(std::string set,
                            ExpectIdentifier(lex, "trigger set name"));
      cmd.set_name = set;
    } else if (t.IsKeyword("from")) {
      (void)lex->Next();
      TMAN_ASSIGN_OR_RETURN(cmd.from, ParseFromList(lex));
    } else if (t.IsKeyword("on")) {
      (void)lex->Next();
      TMAN_ASSIGN_OR_RETURN(EventSpec spec, ParseEventSpec(lex));
      cmd.on = std::move(spec);
    } else if (t.IsKeyword("when")) {
      (void)lex->Next();
      TMAN_ASSIGN_OR_RETURN(cmd.when, ParseOr(lex));
    } else if (t.IsKeyword("group")) {
      (void)lex->Next();
      TMAN_RETURN_IF_ERROR(ExpectKeyword(lex, "by"));
      while (true) {
        TMAN_ASSIGN_OR_RETURN(ExprPtr col, ParseOr(lex));
        cmd.group_by.push_back(std::move(col));
        if (lex->Peek().Is(TokenKind::kComma)) {
          (void)lex->Next();
          continue;
        }
        break;
      }
    } else if (t.IsKeyword("having")) {
      (void)lex->Next();
      TMAN_ASSIGN_OR_RETURN(cmd.having, ParseOr(lex));
    } else if (t.IsKeyword("do")) {
      (void)lex->Next();
      TMAN_ASSIGN_OR_RETURN(cmd.action, ParseAction(lex));
      saw_do = true;
    } else {
      return Status::ParseError("unexpected token in create trigger " +
                                lex->Where());
    }
  }
  if (cmd.from.empty()) {
    return Status::ParseError("create trigger requires a from clause");
  }
  return Command(std::move(cmd));
}

Result<Command> ParseCommandFromLexer(Lexer* lex, std::string_view text) {
  if (!lex->init_status().ok()) return lex->init_status();
  if (lex->Peek().IsKeyword("create")) {
    (void)lex->Next();
    TMAN_RETURN_IF_ERROR(ExpectKeyword(lex, "trigger"));
    // "create trigger set <name>" vs "create trigger <name>": a set
    // creation has an identifier after the 'set' keyword.
    if (lex->Peek().IsKeyword("set")) {
      (void)lex->Next();
      CreateTriggerSetCmd cmd;
      TMAN_ASSIGN_OR_RETURN(cmd.name,
                            ExpectIdentifier(lex, "trigger set name"));
      if (lex->Peek().Is(TokenKind::kStringLiteral)) {
        TMAN_ASSIGN_OR_RETURN(Token comments, lex->Next());
        cmd.comments = comments.text;
      }
      return Command(std::move(cmd));
    }
    return ParseCreateTrigger(lex, text);
  }
  if (lex->Peek().IsKeyword("drop")) {
    (void)lex->Next();
    TMAN_RETURN_IF_ERROR(ExpectKeyword(lex, "trigger"));
    DropTriggerCmd cmd;
    TMAN_ASSIGN_OR_RETURN(cmd.name, ExpectIdentifier(lex, "trigger name"));
    return Command(std::move(cmd));
  }
  if (lex->Peek().IsKeyword("enable") || lex->Peek().IsKeyword("disable")) {
    EnableCmd cmd;
    cmd.enable = lex->Peek().IsKeyword("enable");
    (void)lex->Next();
    TMAN_RETURN_IF_ERROR(ExpectKeyword(lex, "trigger"));
    if (lex->Peek().IsKeyword("set")) {
      (void)lex->Next();
      cmd.is_set = true;
    }
    TMAN_ASSIGN_OR_RETURN(cmd.name, ExpectIdentifier(lex, "name"));
    return Command(std::move(cmd));
  }
  if (lex->Peek().IsKeyword("define")) {
    (void)lex->Next();
    TMAN_RETURN_IF_ERROR(ExpectKeyword(lex, "data"));
    TMAN_RETURN_IF_ERROR(ExpectKeyword(lex, "source"));
    DefineDataSourceCmd cmd;
    TMAN_ASSIGN_OR_RETURN(std::string name,
                          ExpectIdentifier(lex, "data source name"));
    cmd.name = ToLower(name);
    TMAN_RETURN_IF_ERROR(Expect(lex, TokenKind::kLParen, "'('"));
    std::vector<Field> fields;
    while (true) {
      TMAN_ASSIGN_OR_RETURN(std::string attr,
                            ExpectIdentifier(lex, "attribute name"));
      TMAN_ASSIGN_OR_RETURN(std::string type_name,
                            ExpectIdentifier(lex, "type name"));
      TMAN_ASSIGN_OR_RETURN(DataType type, DataTypeFromName(type_name));
      uint32_t width = 0;
      if (lex->Peek().Is(TokenKind::kLParen)) {
        (void)lex->Next();
        if (!lex->Peek().Is(TokenKind::kIntLiteral)) {
          return Status::ParseError("expected width " + lex->Where());
        }
        TMAN_ASSIGN_OR_RETURN(Token w, lex->Next());
        width = static_cast<uint32_t>(w.int_value);
        TMAN_RETURN_IF_ERROR(Expect(lex, TokenKind::kRParen, "')'"));
      }
      fields.emplace_back(ToLower(attr), type, width);
      if (lex->Peek().Is(TokenKind::kComma)) {
        (void)lex->Next();
        continue;
      }
      break;
    }
    TMAN_RETURN_IF_ERROR(Expect(lex, TokenKind::kRParen, "')'"));
    cmd.schema = Schema(std::move(fields));
    return Command(std::move(cmd));
  }
  return Status::ParseError("unknown command " + lex->Where());
}

}  // namespace

Result<Command> ParseCommand(std::string_view text) {
  Lexer lex(text);
  TMAN_ASSIGN_OR_RETURN(Command cmd, ParseCommandFromLexer(&lex, text));
  if (lex.Peek().Is(TokenKind::kSemicolon)) (void)lex.Next();
  if (!lex.AtEnd()) {
    return Status::ParseError("trailing input after command " + lex.Where());
  }
  return cmd;
}

Result<std::vector<Command>> ParseScript(std::string_view text) {
  std::vector<Command> out;
  for (const std::string& piece : Split(text, ';')) {
    std::string_view trimmed = Trim(piece);
    if (trimmed.empty()) continue;
    TMAN_ASSIGN_OR_RETURN(Command cmd, ParseCommand(trimmed));
    out.push_back(std::move(cmd));
  }
  return out;
}

Result<ExprPtr> ParseExpressionString(std::string_view text) {
  Lexer lex(text);
  if (!lex.init_status().ok()) return lex.init_status();
  TMAN_ASSIGN_OR_RETURN(ExprPtr e, ParseOr(&lex));
  if (!lex.AtEnd()) {
    return Status::ParseError("trailing input after expression " +
                              lex.Where());
  }
  return e;
}

Result<ExprPtr> ParseExpression(Lexer* lex) {
  if (!lex->init_status().ok()) return lex->init_status();
  return ParseOr(lex);
}

}  // namespace tman
