#ifndef TRIGGERMAN_PARSER_LEXER_H_
#define TRIGGERMAN_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace tman {

/// Token kinds produced by the Lexer. Keywords are not distinguished here:
/// the command language is keyword-delimited but identifiers and keywords
/// share one token kind, and the parser matches keywords case-insensitively
/// by spelling.
enum class TokenKind {
  kEnd,
  kIdentifier,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  // punctuation / operators
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemicolon,
  kEq,        // =
  kNe,        // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kColon,     // used by :NEW / :OLD macros inside execSQL text
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // identifier spelling or string contents
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t offset = 0;      // byte offset in the input, for error messages

  bool Is(TokenKind k) const { return kind == k; }

  /// Case-insensitive keyword match against an identifier token.
  bool IsKeyword(std::string_view kw) const;

  std::string ToString() const;
};

/// A hand-written scanner for the TriggerMan command language and its
/// SQL-like sublanguage. Strings use single quotes with '' as the escape
/// for an embedded quote. Comments: `--` to end of line.
class Lexer {
 public:
  explicit Lexer(std::string_view input);

  /// The current (look-ahead) token.
  const Token& Peek() const { return current_; }

  /// Consumes the current token and scans the next one.
  Result<Token> Next();

  /// Errors carry this context: "at offset N near '...'".
  std::string Where() const;

  /// True once the input is exhausted.
  bool AtEnd() const { return current_.kind == TokenKind::kEnd; }

  /// Status of the initial scan (the constructor scans the first token).
  const Status& init_status() const { return init_status_; }

 private:
  Result<Token> Scan();

  std::string_view input_;
  size_t pos_ = 0;
  Token current_;
  Status init_status_;
};

}  // namespace tman

#endif  // TRIGGERMAN_PARSER_LEXER_H_
