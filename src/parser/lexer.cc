#include "parser/lexer.h"

#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace tman {

bool Token::IsKeyword(std::string_view kw) const {
  return kind == TokenKind::kIdentifier && EqualsIgnoreCase(text, kw);
}

std::string Token::ToString() const {
  switch (kind) {
    case TokenKind::kEnd:
      return "<end>";
    case TokenKind::kIdentifier:
      return text;
    case TokenKind::kIntLiteral:
      return std::to_string(int_value);
    case TokenKind::kFloatLiteral:
      return std::to_string(float_value);
    case TokenKind::kStringLiteral:
      return "'" + text + "'";
    case TokenKind::kLParen:
      return "(";
    case TokenKind::kRParen:
      return ")";
    case TokenKind::kComma:
      return ",";
    case TokenKind::kDot:
      return ".";
    case TokenKind::kSemicolon:
      return ";";
    case TokenKind::kEq:
      return "=";
    case TokenKind::kNe:
      return "<>";
    case TokenKind::kLt:
      return "<";
    case TokenKind::kLe:
      return "<=";
    case TokenKind::kGt:
      return ">";
    case TokenKind::kGe:
      return ">=";
    case TokenKind::kPlus:
      return "+";
    case TokenKind::kMinus:
      return "-";
    case TokenKind::kStar:
      return "*";
    case TokenKind::kSlash:
      return "/";
    case TokenKind::kColon:
      return ":";
  }
  return "?";
}

Lexer::Lexer(std::string_view input) : input_(input) {
  auto first = Scan();
  if (first.ok()) {
    current_ = *first;
  } else {
    init_status_ = first.status();
    current_.kind = TokenKind::kEnd;
  }
}

Result<Token> Lexer::Next() {
  Token prev = current_;
  auto next = Scan();
  if (!next.ok()) {
    // Sticky scan error: present end-of-input so parsers terminate, and
    // surface the error to callers that check.
    current_ = Token{};
    init_status_ = next.status();
    return next.status();
  }
  current_ = *next;
  return prev;
}

std::string Lexer::Where() const {
  size_t start = current_.offset;
  size_t len = input_.size() - start;
  if (len > 20) len = 20;
  return "at offset " + std::to_string(start) + " near '" +
         std::string(input_.substr(start, len)) + "'";
}

Result<Token> Lexer::Scan() {
  // Skip whitespace and -- comments.
  while (pos_ < input_.size()) {
    char c = input_[pos_];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos_;
      continue;
    }
    if (c == '-' && pos_ + 1 < input_.size() && input_[pos_ + 1] == '-') {
      while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      continue;
    }
    break;
  }

  Token t;
  t.offset = pos_;
  if (pos_ >= input_.size()) {
    t.kind = TokenKind::kEnd;
    return t;
  }

  char c = input_[pos_];
  // Identifiers / keywords.
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    t.kind = TokenKind::kIdentifier;
    t.text = std::string(input_.substr(start, pos_ - start));
    return t;
  }

  // Numbers: 123, 123.5, .5, 1e6.
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && pos_ + 1 < input_.size() &&
       std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
    size_t start = pos_;
    bool is_float = false;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ < input_.size() && input_[pos_] == '.' &&
        pos_ + 1 < input_.size() &&
        std::isdigit(static_cast<unsigned char>(input_[pos_ + 1]))) {
      is_float = true;
      ++pos_;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < input_.size() &&
        (input_[pos_] == 'e' || input_[pos_] == 'E')) {
      size_t exp = pos_ + 1;
      if (exp < input_.size() &&
          (input_[exp] == '+' || input_[exp] == '-')) {
        ++exp;
      }
      if (exp < input_.size() &&
          std::isdigit(static_cast<unsigned char>(input_[exp]))) {
        is_float = true;
        pos_ = exp;
        while (pos_ < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
          ++pos_;
        }
      }
    }
    std::string num(input_.substr(start, pos_ - start));
    if (is_float) {
      t.kind = TokenKind::kFloatLiteral;
      t.float_value = std::strtod(num.c_str(), nullptr);
    } else {
      t.kind = TokenKind::kIntLiteral;
      t.int_value = std::strtoll(num.c_str(), nullptr, 10);
    }
    return t;
  }

  // String literals: '...' with '' escaping a quote.
  if (c == '\'') {
    ++pos_;
    std::string text;
    while (true) {
      if (pos_ >= input_.size()) {
        return Status::ParseError("unterminated string literal " + Where());
      }
      char ch = input_[pos_];
      if (ch == '\'') {
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '\'') {
          text.push_back('\'');
          pos_ += 2;
          continue;
        }
        ++pos_;
        break;
      }
      text.push_back(ch);
      ++pos_;
    }
    t.kind = TokenKind::kStringLiteral;
    t.text = std::move(text);
    return t;
  }

  // Operators and punctuation.
  ++pos_;
  switch (c) {
    case '(':
      t.kind = TokenKind::kLParen;
      return t;
    case ')':
      t.kind = TokenKind::kRParen;
      return t;
    case ',':
      t.kind = TokenKind::kComma;
      return t;
    case '.':
      t.kind = TokenKind::kDot;
      return t;
    case ';':
      t.kind = TokenKind::kSemicolon;
      return t;
    case '+':
      t.kind = TokenKind::kPlus;
      return t;
    case '-':
      t.kind = TokenKind::kMinus;
      return t;
    case '*':
      t.kind = TokenKind::kStar;
      return t;
    case '/':
      t.kind = TokenKind::kSlash;
      return t;
    case ':':
      t.kind = TokenKind::kColon;
      return t;
    case '=':
      t.kind = TokenKind::kEq;
      return t;
    case '!':
      if (pos_ < input_.size() && input_[pos_] == '=') {
        ++pos_;
        t.kind = TokenKind::kNe;
        return t;
      }
      return Status::ParseError("unexpected '!' " + Where());
    case '<':
      if (pos_ < input_.size() && input_[pos_] == '=') {
        ++pos_;
        t.kind = TokenKind::kLe;
      } else if (pos_ < input_.size() && input_[pos_] == '>') {
        ++pos_;
        t.kind = TokenKind::kNe;
      } else {
        t.kind = TokenKind::kLt;
      }
      return t;
    case '>':
      if (pos_ < input_.size() && input_[pos_] == '=') {
        ++pos_;
        t.kind = TokenKind::kGe;
      } else {
        t.kind = TokenKind::kGt;
      }
      return t;
    default:
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' at offset " + std::to_string(t.offset));
  }
}

}  // namespace tman
