#ifndef TRIGGERMAN_PARSER_AST_H_
#define TRIGGERMAN_PARSER_AST_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "expr/expr.h"
#include "types/schema.h"
#include "types/update_descriptor.h"

namespace tman {

/// One entry of a from-clause: a data source usage, optionally renamed
/// ("from salesperson s" binds tuple variable s). When no variable is
/// given the source name doubles as the variable.
struct TupleVarDecl {
  std::string source;
  std::string var;
};

/// An on-clause: operation, optional explicit target ("on insert to
/// house"), and optional update column list ("on update(emp.salary)").
/// When columns are given, the target is inferred from their qualifier.
struct EventSpec {
  OpCode op = OpCode::kInsert;
  std::string target;
  std::vector<std::string> columns;  // qualified "var.attr" spellings
};

/// Trigger actions. execSQL carries the raw SQL text (with :NEW/:OLD
/// macros, substituted at firing time); raise event carries an event name
/// and argument expressions over the trigger's tuple variables.
enum class ActionKind { kExecSql, kRaiseEvent };

struct ActionSpec {
  ActionKind kind = ActionKind::kExecSql;
  std::string sql;
  std::string event_name;
  std::vector<ExprPtr> event_args;
};

/// create trigger <name> [in setName] from ... [on ...] [when ...]
/// [group by ...] [having ...] do <action>
struct CreateTriggerCmd {
  std::string name;
  std::string set_name;  // empty = default trigger set
  std::vector<TupleVarDecl> from;
  std::optional<EventSpec> on;
  ExprPtr when;  // null when absent
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // null when absent
  ActionSpec action;
  std::string original_text;  // stored in the trigger catalog
};

struct DropTriggerCmd {
  std::string name;
};

struct CreateTriggerSetCmd {
  std::string name;
  std::string comments;
};

/// enable/disable trigger <name> | enable/disable trigger set <name>
struct EnableCmd {
  bool enable = true;
  bool is_set = false;
  std::string name;
};

/// define data source <name> (attr type, ...) — imports a schema. In the
/// paper this reads the schema from a connection's database; MiniDB-backed
/// sources may instead be registered programmatically.
struct DefineDataSourceCmd {
  std::string name;
  Schema schema;
};

using Command = std::variant<CreateTriggerCmd, DropTriggerCmd,
                             CreateTriggerSetCmd, EnableCmd,
                             DefineDataSourceCmd>;

}  // namespace tman

#endif  // TRIGGERMAN_PARSER_AST_H_
