#ifndef TRIGGERMAN_BENCH_BENCH_COMMON_H_
#define TRIGGERMAN_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <string>

#include "db/database.h"
#include "expr/eval.h"
#include "parser/parser.h"
#include "predindex/predicate_index.h"
#include "util/random.h"

namespace tman::bench {

inline Schema QuoteSchema() {
  return Schema({{"symbol", DataType::kVarchar},
                 {"price", DataType::kFloat},
                 {"volume", DataType::kInt}});
}

inline UpdateDescriptor QuoteTick(Random* rng, int num_symbols,
                                  DataSourceId ds = 1) {
  std::string symbol =
      "SYM" + std::to_string(rng->Uniform(static_cast<uint64_t>(num_symbols)));
  return UpdateDescriptor::Insert(
      ds, Tuple({Value::String(symbol),
                 Value::Float(static_cast<double>(rng->Uniform(200))),
                 Value::Int(static_cast<int64_t>(rng->Uniform(10000)))}));
}

inline ExprPtr MustParse(const std::string& text) {
  auto r = ParseExpressionString(text);
  if (!r.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", r.status().ToString().c_str());
    std::abort();
  }
  return *r;
}

inline void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
    std::abort();
  }
}

template <typename T>
inline T Check(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

/// The baseline every trigger system without a predicate index pays
/// (§8: "the cost of this is always at least linear in the number of
/// triggers"): test every trigger's condition against each token.
class NaiveTester {
 public:
  explicit NaiveTester(Schema schema) : schema_(std::move(schema)) {}

  void Add(TriggerId id, OpCode op, ExprPtr predicate) {
    triggers_.push_back({id, op, std::move(predicate)});
  }

  size_t Match(const UpdateDescriptor& token,
               std::vector<TriggerId>* out) const {
    const Tuple& tuple = token.EffectiveTuple();
    for (const auto& t : triggers_) {
      if (!OpMatches(t.op, token.op)) continue;
      Bindings b;
      b.Bind("t", &schema_, &tuple);
      auto pass = EvalPredicate(t.predicate, b);
      if (pass.ok() && *pass) out->push_back(t.id);
    }
    return out->size();
  }

  size_t size() const { return triggers_.size(); }

 private:
  struct Entry {
    TriggerId id;
    OpCode op;
    ExprPtr predicate;
  };
  Schema schema_;
  std::vector<Entry> triggers_;
};

}  // namespace tman::bench

#endif  // TRIGGERMAN_BENCH_BENCH_COMMON_H_
