// Experiments E3 and F5 (§6): concurrency. Token-level concurrency scales
// throughput with the number of driver threads; condition-level
// concurrency (Figure 5's partitioned triggerID sets) splits one token's
// matching across tasks; rule-action concurrency moves fired actions onto
// their own tasks. Shapes matter (more drivers => more throughput until
// the CPU count), not absolute numbers.

#include "bench/bench_common.h"

#include "core/trigger_manager.h"

namespace tman::bench {
namespace {

constexpr int kSymbols = 64;
constexpr int kTriggersPerRun = 2000;
constexpr int kTokensPerBatch = 500;

struct Fixture {
  Database db;
  std::unique_ptr<TriggerManager> tman;
  DataSourceId ds = 0;

  explicit Fixture(TriggerManagerOptions options, int same_condition = 0) {
    // Busy actions make concurrency visible on few cores.
    tman = std::make_unique<TriggerManager>(&db, options);
    Check(tman->Open(), "open");
    ds = Check(tman->DefineStreamSource("quotes", QuoteSchema()),
               "define source");
    Random rng(3);
    for (int i = 0; i < kTriggersPerRun; ++i) {
      std::string cond =
          same_condition > 0
              ? "quotes.symbol = 'SYM0'"  // Figure 5: same condition
              : "quotes.symbol = 'SYM" +
                    std::to_string(rng.Uniform(kSymbols)) + "'";
      std::string cmd = "create trigger t" + std::to_string(i) +
                        " from quotes when " + cond +
                        " and quotes.price >= 0"
                        " do raise event E(quotes.price * 2 + 1)";
      Check(tman->ExecuteCommand(cmd).status(), "create trigger");
    }
  }

  void RunBatch(Random* rng) {
    for (int i = 0; i < kTokensPerBatch; ++i) {
      Check(tman->SubmitUpdate(QuoteTick(rng, kSymbols, ds)), "submit");
    }
    tman->Drain();
  }
};

void BM_TokenLevelConcurrency(benchmark::State& state) {
  TriggerManagerOptions options;
  options.driver_config.num_drivers = static_cast<uint32_t>(state.range(0));
  options.driver_config.period = std::chrono::milliseconds(2);
  options.persistent_queue = false;
  Fixture fx(options);
  Check(fx.tman->Start(), "start");
  Random rng(5);
  for (auto _ : state) {
    fx.RunBatch(&rng);
  }
  fx.tman->Stop();
  state.counters["drivers"] = static_cast<double>(state.range(0));
  state.counters["tokens_per_iter"] = kTokensPerBatch;
}
BENCHMARK(BM_TokenLevelConcurrency)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Figure 5: M triggers with the same condition, partitioned round robin
// into P subsets processed as separate tasks.
void BM_ConditionLevelPartitions(benchmark::State& state) {
  TriggerManagerOptions options;
  options.driver_config.num_drivers = 2;
  options.driver_config.period = std::chrono::milliseconds(2);
  options.condition_partitions = static_cast<uint32_t>(state.range(0));
  options.persistent_queue = false;
  Fixture fx(options, /*same_condition=*/1);
  Check(fx.tman->Start(), "start");
  Random rng(5);
  for (auto _ : state) {
    // Every token matches all 2000 triggers; partitions split that work.
    Check(fx.tman->SubmitUpdate(UpdateDescriptor::Insert(
              fx.ds, Tuple({Value::String("SYM0"), Value::Float(10),
                            Value::Int(1)}))),
          "submit");
    fx.tman->Drain();
  }
  fx.tman->Stop();
  state.counters["partitions"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ConditionLevelPartitions)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Rule-action concurrency: actions as separate tasks vs inline.
void BM_ActionConcurrency(benchmark::State& state) {
  TriggerManagerOptions options;
  options.driver_config.num_drivers = 2;
  options.driver_config.period = std::chrono::milliseconds(2);
  options.concurrent_actions = state.range(0) != 0;
  options.persistent_queue = false;
  Fixture fx(options, /*same_condition=*/1);
  Check(fx.tman->Start(), "start");
  for (auto _ : state) {
    Check(fx.tman->SubmitUpdate(UpdateDescriptor::Insert(
              fx.ds, Tuple({Value::String("SYM0"), Value::Float(10),
                            Value::Int(1)}))),
          "submit");
    fx.tman->Drain();
  }
  fx.tman->Stop();
  state.counters["concurrent_actions"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ActionConcurrency)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tman::bench

BENCHMARK_MAIN();
