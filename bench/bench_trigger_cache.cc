// Experiment E2 (§5.1): the trigger cache. More triggers exist than fit
// in main memory; matched triggers are pinned, loading their descriptions
// from the catalog on a miss. With a skewed (Zipf) match distribution the
// working set stays cached and throughput approaches the all-in-memory
// case; a uniform distribution over more triggers than capacity thrashes.

#include "bench/bench_common.h"

#include "cache/trigger_cache.h"
#include "catalog/trigger_catalog.h"
#include "core/trigger_manager.h"

namespace tman::bench {
namespace {

constexpr int kTriggers = 4096;

struct CacheFixture {
  Database db;
  std::unique_ptr<TriggerManager> tman;
  DataSourceId ds = 0;

  explicit CacheFixture(size_t cache_capacity) {
    TriggerManagerOptions options;
    options.trigger_cache_capacity = cache_capacity;
    tman = std::make_unique<TriggerManager>(&db, options);
    Check(tman->Open(), "open");
    ds = Check(tman->DefineStreamSource("quotes", QuoteSchema()),
               "define source");
    for (int i = 0; i < kTriggers; ++i) {
      // One trigger per symbol id: a token picks exactly one trigger.
      std::string cmd = "create trigger t" + std::to_string(i) +
                        " from quotes when quotes.symbol = 'SYM" +
                        std::to_string(i) +
                        "' do raise event E(quotes.price)";
      Check(tman->ExecuteCommand(cmd).status(), "create trigger");
    }
  }
};

void RunCacheBenchmark(benchmark::State& state, double zipf_theta) {
  size_t capacity = static_cast<size_t>(state.range(0));
  CacheFixture fx(capacity);
  fx.tman->cache().ResetStats();
  ZipfGenerator zipf(kTriggers, zipf_theta, 99);
  for (auto _ : state) {
    int sym = static_cast<int>(zipf.Next());
    Check(fx.tman->SubmitUpdate(UpdateDescriptor::Insert(
              fx.ds, Tuple({Value::String("SYM" + std::to_string(sym)),
                            Value::Float(10), Value::Int(1)}))),
          "submit");
    Check(fx.tman->ProcessPending(), "process");
  }
  auto stats = fx.tman->cache().stats();
  double total = static_cast<double>(stats.hits + stats.misses);
  state.counters["cache_capacity"] = static_cast<double>(capacity);
  state.counters["hit_ratio"] =
      total > 0 ? static_cast<double>(stats.hits) / total : 0;
  state.counters["evictions"] = static_cast<double>(stats.evictions);
}

void BM_CacheUniform(benchmark::State& state) {
  RunCacheBenchmark(state, 0.0);
}
void BM_CacheZipf(benchmark::State& state) {
  RunCacheBenchmark(state, 0.99);
}

BENCHMARK(BM_CacheUniform)
    ->Arg(64)
    ->Arg(512)
    ->Arg(2048)
    ->Arg(kTriggers)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CacheZipf)
    ->Arg(64)
    ->Arg(512)
    ->Arg(2048)
    ->Arg(kTriggers)
    ->Unit(benchmark::kMicrosecond);

// Pin cost in isolation: a hit is a hash probe; a miss re-parses the
// trigger text and rebuilds the network (the paper's motivation for
// keeping descriptions cached).
void BM_PinHit(benchmark::State& state) {
  CacheFixture fx(kTriggers);
  auto warm = fx.tman->PinTrigger("t0");
  Check(warm.status(), "pin");
  TriggerId id = (*warm)->id;
  for (auto _ : state) {
    auto h = fx.tman->cache().Pin(id);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_PinHit)->Unit(benchmark::kNanosecond);

void BM_PinMiss(benchmark::State& state) {
  CacheFixture fx(kTriggers);
  auto warm = fx.tman->PinTrigger("t0");
  Check(warm.status(), "pin");
  TriggerId id = (*warm)->id;
  warm = Status::NotFound("released");
  for (auto _ : state) {
    fx.tman->cache().Invalidate(id);  // force a catalog load
    auto h = fx.tman->cache().Pin(id);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_PinMiss)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tman::bench

BENCHMARK_MAIN();
