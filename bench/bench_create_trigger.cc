// Experiment F2 (Figure 2 / §5.1): trigger definition. Creating a trigger
// runs the full §5.1 pipeline — parse, CNF, condition graph, A-TREAT
// build, signature dedup, catalog writes. Because new triggers almost
// always reuse an existing expression signature, cost stays flat as the
// trigger population grows, and the signature count stays tiny.

#include "bench/bench_common.h"

#include "core/trigger_manager.h"

namespace tman::bench {
namespace {

void BM_CreateTriggerEndToEnd(benchmark::State& state) {
  int64_t preload = state.range(0);
  Database db;
  TriggerManager tman(&db);
  Check(tman.Open(), "open");
  Check(tman.DefineStreamSource("quotes", QuoteSchema()).status(),
        "define source");
  Random rng(13);
  auto make_cmd = [&rng](int64_t i) {
    return "create trigger t" + std::to_string(i) +
           " from quotes when quotes.symbol = 'SYM" +
           std::to_string(rng.Uniform(500)) + "' and quotes.price > " +
           std::to_string(rng.Uniform(200)) +
           " do raise event E(quotes.price)";
  };
  for (int64_t i = 0; i < preload; ++i) {
    Check(tman.ExecuteCommand(make_cmd(i)).status(), "create");
  }
  int64_t next = preload;
  for (auto _ : state) {
    Check(tman.ExecuteCommand(make_cmd(next++)).status(), "create");
  }
  state.counters["existing_triggers"] = static_cast<double>(preload);
  state.counters["signatures"] = static_cast<double>(
      tman.predicate_index().stats().num_signatures);
}
BENCHMARK(BM_CreateTriggerEndToEnd)
    ->Arg(0)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMicrosecond);

// Per-token match cost grows with the number of *distinct signatures* on
// a data source (every signature's probe structure is consulted per
// token), not with the number of triggers — which is why the paper's
// observation that real systems see only a small number of unique
// signatures is what makes the whole design scale. A wide schema yields
// S structurally distinct signatures (t.attr<k> = C).
void BM_MatchVsSignatureCount(benchmark::State& state) {
  int64_t num_signatures = state.range(0);
  constexpr int64_t kTriggersPerSignature = 64;
  std::vector<Field> fields;
  for (int64_t a = 0; a < num_signatures; ++a) {
    fields.emplace_back("attr" + std::to_string(a), DataType::kInt);
  }
  Schema wide(fields);
  PredicateIndex index(nullptr, OrgPolicy());
  Check(index.RegisterDataSource(1, wide), "register");
  TriggerId next = 1;
  for (int64_t a = 0; a < num_signatures; ++a) {
    for (int64_t k = 0; k < kTriggersPerSignature; ++k) {
      PredicateSpec spec;
      spec.data_source = 1;
      spec.op = OpCode::kInsertOrUpdate;
      spec.predicate = MustParse("t.attr" + std::to_string(a) + " = " +
                                 std::to_string(k));
      spec.trigger_id = next++;
      Check(index.AddPredicate(spec).status(), "add");
    }
  }
  Random rng(9);
  std::vector<Value> values(static_cast<size_t>(num_signatures));
  for (auto _ : state) {
    for (auto& v : values) {
      v = Value::Int(rng.UniformRange(0, kTriggersPerSignature - 1));
    }
    std::vector<PredicateMatch> out;
    Check(index.Match(UpdateDescriptor::Insert(1, Tuple(values)), &out),
          "match");
    benchmark::DoNotOptimize(out);
  }
  state.counters["signatures"] =
      static_cast<double>(index.stats().num_signatures);
  state.counters["predicates"] =
      static_cast<double>(index.stats().num_predicates);
}
BENCHMARK(BM_MatchVsSignatureCount)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tman::bench

BENCHMARK_MAIN();
