// Experiment F3 (Figure 3 / §5, §8): per-token selection matching cost.
//
// The paper's claim: with the signature-based predicate index, the cost of
// finding the triggers a token matches is (nearly) independent of the
// number of *non-matching* triggers, whereas the conventional approach —
// testing the condition of every applicable trigger — is at least linear
// in trigger count. Both run the same workload: N threshold subscriptions
// (`symbol = SYM<i> and price > C`, one symbol per subscription, so every
// tick has ~1 candidate and ~0.5 expected matches at every N) and a
// stream of quote ticks.

#include <map>
#include <memory>

#include "bench/bench_common.h"

namespace tman::bench {
namespace {

std::string PredicateText(int64_t i, Random* rng) {
  return "t.symbol = 'SYM" + std::to_string(i) + "' and t.price > " +
         std::to_string(rng->Uniform(200));
}

/// Indexes are expensive to build at the 10^6 scale; build each size once
/// and reuse it across benchmark re-invocations.
PredicateIndex* IndexOfSize(int64_t num_triggers) {
  static std::map<int64_t, std::unique_ptr<PredicateIndex>>* cache =
      new std::map<int64_t, std::unique_ptr<PredicateIndex>>();
  auto it = cache->find(num_triggers);
  if (it != cache->end()) return it->second.get();
  OrgPolicy policy;
  policy.memory_max = 10000000;  // stay in main memory: F3 measures the
                                 // in-memory index; E1 covers disk orgs
  auto index = std::make_unique<PredicateIndex>(nullptr, policy);
  Check(index->RegisterDataSource(1, QuoteSchema()), "register");
  Random rng(42);
  for (int64_t i = 0; i < num_triggers; ++i) {
    PredicateSpec spec;
    spec.data_source = 1;
    spec.op = OpCode::kInsertOrUpdate;
    spec.predicate = MustParse(PredicateText(i, &rng));
    spec.trigger_id = static_cast<TriggerId>(i + 1);
    Check(index->AddPredicate(spec).status(), "add predicate");
  }
  PredicateIndex* out = index.get();
  (*cache)[num_triggers] = std::move(index);
  return out;
}

void BM_PredicateIndexMatch(benchmark::State& state) {
  int64_t num_triggers = state.range(0);
  PredicateIndex* index = IndexOfSize(num_triggers);
  Random tick_rng(7);
  uint64_t matches = 0;
  for (auto _ : state) {
    std::vector<PredicateMatch> out;
    Check(index->Match(
              QuoteTick(&tick_rng, static_cast<int>(num_triggers)), &out),
          "match");
    matches += out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["triggers"] = static_cast<double>(num_triggers);
  state.counters["matches_per_token"] =
      static_cast<double>(matches) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_PredicateIndexMatch)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

void BM_NaivePerTriggerTesting(benchmark::State& state) {
  int64_t num_triggers = state.range(0);
  static std::map<int64_t, std::unique_ptr<NaiveTester>>* cache =
      new std::map<int64_t, std::unique_ptr<NaiveTester>>();
  NaiveTester* naive;
  auto it = cache->find(num_triggers);
  if (it != cache->end()) {
    naive = it->second.get();
  } else {
    auto built = std::make_unique<NaiveTester>(QuoteSchema());
    Random rng(42);
    for (int64_t i = 0; i < num_triggers; ++i) {
      built->Add(static_cast<TriggerId>(i + 1), OpCode::kInsertOrUpdate,
                 MustParse(PredicateText(i, &rng)));
    }
    naive = built.get();
    (*cache)[num_triggers] = std::move(built);
  }
  Random tick_rng(7);
  uint64_t matches = 0;
  for (auto _ : state) {
    std::vector<TriggerId> out;
    naive->Match(QuoteTick(&tick_rng, static_cast<int>(num_triggers)), &out);
    matches += out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["triggers"] = static_cast<double>(num_triggers);
  state.counters["matches_per_token"] =
      static_cast<double>(matches) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_NaivePerTriggerTesting)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

// Trigger creation time as the trigger population grows (the signature
// list stays tiny, so creation cost stays flat — F2's claim).
void BM_AddPredicateAtScale(benchmark::State& state) {
  int64_t existing = state.range(0);
  OrgPolicy policy;
  policy.memory_max = 10000000;
  PredicateIndex index(nullptr, policy);
  Check(index.RegisterDataSource(1, QuoteSchema()), "register");
  Random rng(42);
  for (int64_t i = 0; i < existing; ++i) {
    PredicateSpec spec;
    spec.data_source = 1;
    spec.op = OpCode::kInsertOrUpdate;
    spec.predicate = MustParse(PredicateText(i, &rng));
    spec.trigger_id = static_cast<TriggerId>(i + 1);
    Check(index.AddPredicate(spec).status(), "add predicate");
  }
  int64_t next = existing;
  for (auto _ : state) {
    PredicateSpec spec;
    spec.data_source = 1;
    spec.op = OpCode::kInsertOrUpdate;
    spec.predicate = MustParse(PredicateText(next, &rng));
    spec.trigger_id = static_cast<TriggerId>(next + 1);
    ++next;
    Check(index.AddPredicate(spec).status(), "add predicate");
  }
  state.counters["existing_triggers"] = static_cast<double>(existing);
}
BENCHMARK(BM_AddPredicateAtScale)
    ->Arg(0)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tman::bench

BENCHMARK_MAIN();
