// Compiled vs interpreted predicate evaluation (the per-token inner
// loop of every matching layer): ns/eval across representative predicate
// shapes — constant selection, multi-conjunct selection, arithmetic,
// string functions, a two-variable join conjunct, and a NULL-heavy
// disjunction. The interpreted baseline is exactly what the hot paths
// ran before compilation landed: a fresh Bindings per token plus a
// tree-walk of the shared_ptr expression graph.
//
// `bench_eval --smoke` times the selection and join shapes once and
// asserts the >=3x compiled-over-interpreted acceptance bound; CI runs
// it on every push and scripts/run_bench.sh records the full sweep in
// BENCH_eval.json.

#include "bench/bench_common.h"

#include <chrono>
#include <vector>

#include "expr/compile.h"

namespace tman::bench {
namespace {

Schema EvalSchema() {
  return Schema({{"k", DataType::kInt},
                 {"v", DataType::kInt},
                 {"price", DataType::kFloat},
                 {"symbol", DataType::kVarchar}});
}

/// Tokens with a spread of values; every `null_every`-th k/v is NULL.
std::vector<Tuple> MakeTuples(int n, int null_every = 0) {
  Random rng(17);
  std::vector<Tuple> tuples;
  tuples.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Value k = Value::Int(static_cast<int64_t>(rng.Uniform(1000)));
    Value v = Value::Int(static_cast<int64_t>(rng.Uniform(1000)));
    if (null_every > 0 && i % null_every == 0) {
      k = Value::Null();
      v = Value::Null();
    }
    tuples.emplace_back(std::vector<Value>{
        std::move(k), std::move(v),
        Value::Float(static_cast<double>(rng.Uniform(400))),
        Value::String("SYM" + std::to_string(rng.Uniform(8)))});
  }
  return tuples;
}

struct Shape {
  const char* name;
  const char* text;
  int null_every;  // 0 = no NULLs in the token stream
};

constexpr Shape kShapes[] = {
    {"int_selection", "t.k > 500", 0},
    {"conjunction4", "t.k > 10 and t.v < 900 and t.k <> 37 and t.v >= 0", 0},
    {"arithmetic", "t.price * 1.07 + 5 > 200", 0},
    {"string_fns", "upper(t.symbol) = 'SYM1' and length(t.symbol) > 3", 0},
    {"null_heavy", "t.k > 800 or t.v < 100", 3},
};

const Shape* FindShape(const std::string& name) {
  for (const Shape& s : kShapes) {
    if (name == s.name) return &s;
  }
  std::fprintf(stderr, "unknown shape: %s\n", name.c_str());
  std::abort();
}

// --- single-variable shapes: compiled vs interpreted -------------------------

void BM_CompiledEval(benchmark::State& state, const std::string& shape_name) {
  const Shape* shape = FindShape(shape_name);
  Schema schema = EvalSchema();
  BindingLayout layout;
  layout.Add("t", &schema);
  auto prog = TryCompilePredicate(MustParse(shape->text), layout);
  if (prog == nullptr) {
    std::fprintf(stderr, "shape %s did not compile\n", shape->name);
    std::abort();
  }
  std::vector<Tuple> tuples = MakeTuples(256, shape->null_every);
  size_t i = 0;
  for (auto _ : state) {
    const Tuple* row[] = {&tuples[i++ % tuples.size()]};
    auto pass = prog->EvalBool(row, 1);
    benchmark::DoNotOptimize(pass.ok() && *pass);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_InterpretedEval(benchmark::State& state,
                        const std::string& shape_name) {
  const Shape* shape = FindShape(shape_name);
  Schema schema = EvalSchema();
  ExprPtr e = MustParse(shape->text);
  std::vector<Tuple> tuples = MakeTuples(256, shape->null_every);
  size_t i = 0;
  for (auto _ : state) {
    Bindings b;
    b.Bind("t", &schema, &tuples[i++ % tuples.size()]);
    auto pass = EvalPredicate(e, b);
    benchmark::DoNotOptimize(pass.ok() && *pass);
  }
  state.SetItemsProcessed(state.iterations());
}

// --- the join conjunct: two bound variables ----------------------------------

constexpr const char* kJoinText = "a.k = b.k and a.v < b.v";

void BM_CompiledJoinConjunct(benchmark::State& state) {
  Schema schema = EvalSchema();
  BindingLayout layout;
  layout.Add("a", &schema);
  layout.Add("b", &schema);
  auto prog = TryCompilePredicate(MustParse(kJoinText), layout);
  if (prog == nullptr) std::abort();
  std::vector<Tuple> tuples = MakeTuples(256);
  size_t i = 0;
  for (auto _ : state) {
    const Tuple* row[] = {&tuples[i % tuples.size()],
                          &tuples[(i + 7) % tuples.size()]};
    ++i;
    auto pass = prog->EvalBool(row, 2);
    benchmark::DoNotOptimize(pass.ok() && *pass);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_InterpretedJoinConjunct(benchmark::State& state) {
  Schema schema = EvalSchema();
  ExprPtr e = MustParse(kJoinText);
  std::vector<Tuple> tuples = MakeTuples(256);
  size_t i = 0;
  for (auto _ : state) {
    Bindings b;
    b.Bind("a", &schema, &tuples[i % tuples.size()]);
    b.Bind("b", &schema, &tuples[(i + 7) % tuples.size()]);
    ++i;
    auto pass = EvalPredicate(e, b);
    benchmark::DoNotOptimize(pass.ok() && *pass);
  }
  state.SetItemsProcessed(state.iterations());
}

#define TMAN_EVAL_BENCH(shape)                                       \
  BENCHMARK_CAPTURE(BM_CompiledEval, shape, #shape);                 \
  BENCHMARK_CAPTURE(BM_InterpretedEval, shape, #shape)

TMAN_EVAL_BENCH(int_selection);
TMAN_EVAL_BENCH(conjunction4);
TMAN_EVAL_BENCH(arithmetic);
TMAN_EVAL_BENCH(string_fns);
TMAN_EVAL_BENCH(null_heavy);
BENCHMARK(BM_CompiledJoinConjunct);
BENCHMARK(BM_InterpretedJoinConjunct);

// --- --smoke: the acceptance bound, checked ----------------------------------

/// ns/eval for `evals` runs of `fn`.
template <typename Fn>
double TimeNs(int evals, Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < evals; ++i) fn(i);
  std::chrono::duration<double, std::nano> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count() / evals;
}

int RunSmoke() {
  constexpr int kEvals = 200000;
  Schema schema = EvalSchema();
  std::vector<Tuple> tuples = MakeTuples(256);
  int failures = 0;

  auto check = [&](const char* what, double interpreted_ns,
                   double compiled_ns) {
    double speedup = interpreted_ns / compiled_ns;
    std::printf(
        "bench_eval --smoke: %s interpreted %.1f ns/eval, compiled %.1f "
        "ns/eval, speedup %.2fx\n",
        what, interpreted_ns, compiled_ns, speedup);
    if (speedup < 3.0) {
      std::fprintf(stderr,
                   "bench_eval --smoke FAILED: %s speedup %.2fx < 3x "
                   "acceptance bound\n",
                   what, speedup);
      ++failures;
    }
  };

  {
    const Shape* shape = FindShape("conjunction4");
    ExprPtr e = MustParse(shape->text);
    BindingLayout layout;
    layout.Add("t", &schema);
    auto prog = TryCompilePredicate(e, layout);
    if (prog == nullptr) std::abort();
    // Warm both paths (thread-local register file, caches) untimed.
    for (int i = 0; i < 1000; ++i) {
      const Tuple* row[] = {&tuples[static_cast<size_t>(i) % tuples.size()]};
      (void)prog->EvalBool(row, 1);
    }
    double interpreted = TimeNs(kEvals, [&](int i) {
      Bindings b;
      b.Bind("t", &schema, &tuples[static_cast<size_t>(i) % tuples.size()]);
      auto pass = EvalPredicate(e, b);
      benchmark::DoNotOptimize(pass.ok() && *pass);
    });
    double compiled = TimeNs(kEvals, [&](int i) {
      const Tuple* row[] = {&tuples[static_cast<size_t>(i) % tuples.size()]};
      auto pass = prog->EvalBool(row, 1);
      benchmark::DoNotOptimize(pass.ok() && *pass);
    });
    check("selection(conjunction4)", interpreted, compiled);
  }

  {
    ExprPtr e = MustParse(kJoinText);
    BindingLayout layout;
    layout.Add("a", &schema);
    layout.Add("b", &schema);
    auto prog = TryCompilePredicate(e, layout);
    if (prog == nullptr) std::abort();
    for (int i = 0; i < 1000; ++i) {
      const Tuple* row[] = {&tuples[static_cast<size_t>(i) % tuples.size()],
                            &tuples[static_cast<size_t>(i + 7) %
                                    tuples.size()]};
      (void)prog->EvalBool(row, 2);
    }
    double interpreted = TimeNs(kEvals, [&](int i) {
      Bindings b;
      b.Bind("a", &schema, &tuples[static_cast<size_t>(i) % tuples.size()]);
      b.Bind("b", &schema,
             &tuples[static_cast<size_t>(i + 7) % tuples.size()]);
      auto pass = EvalPredicate(e, b);
      benchmark::DoNotOptimize(pass.ok() && *pass);
    });
    double compiled = TimeNs(kEvals, [&](int i) {
      const Tuple* row[] = {&tuples[static_cast<size_t>(i) % tuples.size()],
                            &tuples[static_cast<size_t>(i + 7) %
                                    tuples.size()]};
      auto pass = prog->EvalBool(row, 2);
      benchmark::DoNotOptimize(pass.ok() && *pass);
    });
    check("join_conjunct", interpreted, compiled);
  }

  if (failures == 0) {
    std::printf("bench_eval --smoke OK: all shapes >= 3x\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace tman::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      return tman::bench::RunSmoke();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
