// Compiled vs interpreted predicate evaluation (the per-token inner
// loop of every matching layer): ns/eval across representative predicate
// shapes — constant selection, multi-conjunct selection, arithmetic,
// string functions, a two-variable join conjunct, and a NULL-heavy
// disjunction. The interpreted baseline is exactly what the hot paths
// ran before compilation landed: a fresh Bindings per token plus a
// tree-walk of the shared_ptr expression graph.
//
// Each shape also gets a batched lane (BM_BatchedEval / the batched
// join conjunct) sweeping TokenBatch sizes 8/64/256 through EvalBoolBatch;
// items processed counts tokens so ns/item is comparable across lanes.
//
// `bench_eval --smoke` times the selection and join shapes once and
// asserts the >=3x compiled-over-interpreted acceptance bound plus the
// >=2x batched-over-scalar-compiled bound; CI runs it on every push and
// scripts/run_bench.sh records the sweeps in BENCH_eval.json and
// BENCH_batch.json.

#include "bench/bench_common.h"

#include <chrono>
#include <vector>

#include "expr/compile.h"

namespace tman::bench {
namespace {

Schema EvalSchema() {
  return Schema({{"k", DataType::kInt},
                 {"v", DataType::kInt},
                 {"price", DataType::kFloat},
                 {"symbol", DataType::kVarchar}});
}

/// Tokens with a spread of values; every `null_every`-th k/v is NULL.
std::vector<Tuple> MakeTuples(int n, int null_every = 0) {
  Random rng(17);
  std::vector<Tuple> tuples;
  tuples.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Value k = Value::Int(static_cast<int64_t>(rng.Uniform(1000)));
    Value v = Value::Int(static_cast<int64_t>(rng.Uniform(1000)));
    if (null_every > 0 && i % null_every == 0) {
      k = Value::Null();
      v = Value::Null();
    }
    tuples.emplace_back(std::vector<Value>{
        std::move(k), std::move(v),
        Value::Float(static_cast<double>(rng.Uniform(400))),
        Value::String("SYM" + std::to_string(rng.Uniform(8)))});
  }
  return tuples;
}

/// All lanes walk a 256-tuple ring; masking (not modulo) keeps the
/// harness loop out of the per-token numbers being compared.
constexpr size_t kTupleCount = 256;
constexpr size_t kTupleMask = kTupleCount - 1;

struct Shape {
  const char* name;
  const char* text;
  int null_every;  // 0 = no NULLs in the token stream
};

constexpr Shape kShapes[] = {
    {"int_selection", "t.k > 500", 0},
    {"conjunction4", "t.k > 10 and t.v < 900 and t.k <> 37 and t.v >= 0", 0},
    {"arithmetic", "t.price * 1.07 + 5 > 200", 0},
    {"string_fns", "upper(t.symbol) = 'SYM1' and length(t.symbol) > 3", 0},
    {"null_heavy", "t.k > 800 or t.v < 100", 3},
};

const Shape* FindShape(const std::string& name) {
  for (const Shape& s : kShapes) {
    if (name == s.name) return &s;
  }
  std::fprintf(stderr, "unknown shape: %s\n", name.c_str());
  std::abort();
}

// --- single-variable shapes: compiled vs interpreted -------------------------

void BM_CompiledEval(benchmark::State& state, const std::string& shape_name) {
  const Shape* shape = FindShape(shape_name);
  Schema schema = EvalSchema();
  BindingLayout layout;
  layout.Add("t", &schema);
  auto prog = TryCompilePredicate(MustParse(shape->text), layout);
  if (prog == nullptr) {
    std::fprintf(stderr, "shape %s did not compile\n", shape->name);
    std::abort();
  }
  std::vector<Tuple> tuples = MakeTuples(kTupleCount, shape->null_every);
  size_t i = 0;
  for (auto _ : state) {
    const Tuple* row[] = {&tuples[i++ & kTupleMask]};
    auto pass = prog->EvalBool(row, 1);
    benchmark::DoNotOptimize(pass.ok() && *pass);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_InterpretedEval(benchmark::State& state,
                        const std::string& shape_name) {
  const Shape* shape = FindShape(shape_name);
  Schema schema = EvalSchema();
  ExprPtr e = MustParse(shape->text);
  std::vector<Tuple> tuples = MakeTuples(kTupleCount, shape->null_every);
  size_t i = 0;
  for (auto _ : state) {
    Bindings b;
    b.Bind("t", &schema, &tuples[i++ & kTupleMask]);
    auto pass = EvalPredicate(e, b);
    benchmark::DoNotOptimize(pass.ok() && *pass);
  }
  state.SetItemsProcessed(state.iterations());
}

// --- the join conjunct: two bound variables ----------------------------------

constexpr const char* kJoinText = "a.k = b.k and a.v < b.v";

void BM_CompiledJoinConjunct(benchmark::State& state) {
  Schema schema = EvalSchema();
  BindingLayout layout;
  layout.Add("a", &schema);
  layout.Add("b", &schema);
  auto prog = TryCompilePredicate(MustParse(kJoinText), layout);
  if (prog == nullptr) std::abort();
  std::vector<Tuple> tuples = MakeTuples(kTupleCount);
  size_t i = 0;
  for (auto _ : state) {
    const Tuple* row[] = {&tuples[i & kTupleMask],
                          &tuples[(i + 7) & kTupleMask]};
    ++i;
    auto pass = prog->EvalBool(row, 2);
    benchmark::DoNotOptimize(pass.ok() && *pass);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_InterpretedJoinConjunct(benchmark::State& state) {
  Schema schema = EvalSchema();
  ExprPtr e = MustParse(kJoinText);
  std::vector<Tuple> tuples = MakeTuples(kTupleCount);
  size_t i = 0;
  for (auto _ : state) {
    Bindings b;
    b.Bind("a", &schema, &tuples[i & kTupleMask]);
    b.Bind("b", &schema, &tuples[(i + 7) & kTupleMask]);
    ++i;
    auto pass = EvalPredicate(e, b);
    benchmark::DoNotOptimize(pass.ok() && *pass);
  }
  state.SetItemsProcessed(state.iterations());
}

// --- batched VM lanes: one EvalBatch per batch of tokens ---------------------

/// ns/token for the batched VM at a swept batch size; compare against
/// BM_CompiledEval (the scalar dispatch loop) on the same shape. Items
/// processed counts TOKENS, so ns/item is directly comparable.
void BM_BatchedEval(benchmark::State& state, const std::string& shape_name) {
  const Shape* shape = FindShape(shape_name);
  const size_t batch_size = static_cast<size_t>(state.range(0));
  Schema schema = EvalSchema();
  BindingLayout layout;
  layout.Add("t", &schema);
  auto prog = TryCompilePredicate(MustParse(shape->text), layout);
  if (prog == nullptr) {
    std::fprintf(stderr, "shape %s did not compile\n", shape->name);
    std::abort();
  }
  std::vector<Tuple> tuples = MakeTuples(kTupleCount, shape->null_every);
  TokenBatch batch(1);
  BatchResult result;
  std::vector<uint32_t> selection;
  size_t i = 0;
  for (auto _ : state) {
    batch.Clear();
    for (size_t k = 0; k < batch_size; ++k) {
      batch.Append(&tuples[i++ & kTupleMask]);
    }
    selection.clear();
    auto s = prog->EvalBoolBatch(batch, &result, &selection);
    benchmark::DoNotOptimize(s.ok() && selection.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_size));
}

void BM_BatchedJoinConjunct(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  Schema schema = EvalSchema();
  BindingLayout layout;
  layout.Add("a", &schema);
  layout.Add("b", &schema);
  auto prog = TryCompilePredicate(MustParse(kJoinText), layout);
  if (prog == nullptr) std::abort();
  std::vector<Tuple> tuples = MakeTuples(kTupleCount);
  TokenBatch batch(2);
  BatchResult result;
  std::vector<uint32_t> selection;
  size_t i = 0;
  for (auto _ : state) {
    batch.Clear();
    for (size_t k = 0; k < batch_size; ++k) {
      batch.Append(&tuples[i & kTupleMask],
                   &tuples[(i + 7) & kTupleMask]);
      ++i;
    }
    selection.clear();
    auto s = prog->EvalBoolBatch(batch, &result, &selection);
    benchmark::DoNotOptimize(s.ok() && selection.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_size));
}

#define TMAN_EVAL_BENCH(shape)                                       \
  BENCHMARK_CAPTURE(BM_CompiledEval, shape, #shape);                 \
  BENCHMARK_CAPTURE(BM_InterpretedEval, shape, #shape);              \
  BENCHMARK_CAPTURE(BM_BatchedEval, shape, #shape)                   \
      ->Arg(8)                                                       \
      ->Arg(64)                                                      \
      ->Arg(256)

TMAN_EVAL_BENCH(int_selection);
TMAN_EVAL_BENCH(conjunction4);
TMAN_EVAL_BENCH(arithmetic);
TMAN_EVAL_BENCH(string_fns);
TMAN_EVAL_BENCH(null_heavy);
BENCHMARK(BM_CompiledJoinConjunct);
BENCHMARK(BM_InterpretedJoinConjunct);
BENCHMARK(BM_BatchedJoinConjunct)->Arg(8)->Arg(64)->Arg(256);

// --- --smoke: the acceptance bound, checked ----------------------------------

/// ns/eval for `evals` runs of `fn`.
template <typename Fn>
double TimeNs(int evals, Fn&& fn) {
  // Best of three timed passes: the smoke bounds are throughput ratios,
  // and a scheduler hiccup inside a single pass otherwise dominates the
  // measurement on a busy machine.
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < evals; ++i) fn(i);
    std::chrono::duration<double, std::nano> elapsed =
        std::chrono::steady_clock::now() - start;
    const double ns = elapsed.count() / evals;
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

int RunSmoke() {
  constexpr int kEvals = 200000;
  Schema schema = EvalSchema();
  std::vector<Tuple> tuples = MakeTuples(kTupleCount);
  int failures = 0;

  auto check = [&](const char* what, double interpreted_ns,
                   double compiled_ns) {
    double speedup = interpreted_ns / compiled_ns;
    std::printf(
        "bench_eval --smoke: %s interpreted %.1f ns/eval, compiled %.1f "
        "ns/eval, speedup %.2fx\n",
        what, interpreted_ns, compiled_ns, speedup);
    if (speedup < 3.0) {
      std::fprintf(stderr,
                   "bench_eval --smoke FAILED: %s speedup %.2fx < 3x "
                   "acceptance bound\n",
                   what, speedup);
      ++failures;
    }
  };

  // Batched acceptance bound: the columnar VM must deliver >= 2x the
  // scalar compiled path's per-token throughput on the same workload.
  auto check_batched = [&](const char* what, double scalar_ns,
                           double batched_ns) {
    double speedup = scalar_ns / batched_ns;
    std::printf(
        "bench_eval --smoke: %s scalar-compiled %.1f ns/token, batched %.1f "
        "ns/token, speedup %.2fx\n",
        what, scalar_ns, batched_ns, speedup);
    if (speedup < 2.0) {
      std::fprintf(stderr,
                   "bench_eval --smoke FAILED: %s batched speedup %.2fx < 2x "
                   "acceptance bound\n",
                   what, speedup);
      ++failures;
    }
  };

  {
    const Shape* shape = FindShape("conjunction4");
    ExprPtr e = MustParse(shape->text);
    BindingLayout layout;
    layout.Add("t", &schema);
    auto prog = TryCompilePredicate(e, layout);
    if (prog == nullptr) std::abort();
    // Warm both paths (thread-local register file, caches) untimed.
    for (int i = 0; i < 1000; ++i) {
      const Tuple* row[] = {&tuples[static_cast<size_t>(i) & kTupleMask]};
      (void)prog->EvalBool(row, 1);
    }
    double interpreted = TimeNs(kEvals, [&](int i) {
      Bindings b;
      b.Bind("t", &schema, &tuples[static_cast<size_t>(i) & kTupleMask]);
      auto pass = EvalPredicate(e, b);
      benchmark::DoNotOptimize(pass.ok() && *pass);
    });
    double compiled = TimeNs(kEvals, [&](int i) {
      const Tuple* row[] = {&tuples[static_cast<size_t>(i) & kTupleMask]};
      auto pass = prog->EvalBool(row, 1);
      benchmark::DoNotOptimize(pass.ok() && *pass);
    });
    check("selection(conjunction4)", interpreted, compiled);

    constexpr size_t kBatch = kDefaultTokenBatchSize;
    TokenBatch batch(1);
    BatchResult result;
    std::vector<uint32_t> selection;
    size_t pos = 0;
    for (int i = 0; i < 16; ++i) {  // warm the batch scratch untimed
      batch.Clear();
      for (size_t k = 0; k < kBatch; ++k) {
        batch.Append(&tuples[pos++ & kTupleMask]);
      }
      (void)prog->EvalBoolBatch(batch, &result, &selection);
    }
    double batched_per_token =
        TimeNs(kEvals / static_cast<int>(kBatch), [&](int) {
          batch.Clear();
          for (size_t k = 0; k < kBatch; ++k) {
            batch.Append(&tuples[pos++ & kTupleMask]);
          }
          selection.clear();
          auto s = prog->EvalBoolBatch(batch, &result, &selection);
          benchmark::DoNotOptimize(s.ok() && selection.size());
        }) /
        static_cast<double>(kBatch);
    check_batched("selection(conjunction4)", compiled, batched_per_token);
  }

  {
    ExprPtr e = MustParse(kJoinText);
    BindingLayout layout;
    layout.Add("a", &schema);
    layout.Add("b", &schema);
    auto prog = TryCompilePredicate(e, layout);
    if (prog == nullptr) std::abort();
    for (int i = 0; i < 1000; ++i) {
      const Tuple* row[] = {&tuples[static_cast<size_t>(i) & kTupleMask],
                            &tuples[static_cast<size_t>(i + 7) & kTupleMask]};
      (void)prog->EvalBool(row, 2);
    }
    double interpreted = TimeNs(kEvals, [&](int i) {
      Bindings b;
      b.Bind("a", &schema, &tuples[static_cast<size_t>(i) & kTupleMask]);
      b.Bind("b", &schema,
             &tuples[static_cast<size_t>(i + 7) & kTupleMask]);
      auto pass = EvalPredicate(e, b);
      benchmark::DoNotOptimize(pass.ok() && *pass);
    });
    double compiled = TimeNs(kEvals, [&](int i) {
      const Tuple* row[] = {&tuples[static_cast<size_t>(i) & kTupleMask],
                            &tuples[static_cast<size_t>(i + 7) & kTupleMask]};
      auto pass = prog->EvalBool(row, 2);
      benchmark::DoNotOptimize(pass.ok() && *pass);
    });
    check("join_conjunct", interpreted, compiled);

    constexpr size_t kBatch = kDefaultTokenBatchSize;
    TokenBatch batch(2);
    BatchResult result;
    std::vector<uint32_t> selection;
    size_t pos = 0;
    for (int i = 0; i < 16; ++i) {  // warm the batch scratch untimed
      batch.Clear();
      for (size_t k = 0; k < kBatch; ++k) {
        batch.Append(&tuples[pos & kTupleMask],
                     &tuples[(pos + 7) & kTupleMask]);
        ++pos;
      }
      (void)prog->EvalBoolBatch(batch, &result, &selection);
    }
    double batched_per_token =
        TimeNs(kEvals / static_cast<int>(kBatch), [&](int) {
          batch.Clear();
          for (size_t k = 0; k < kBatch; ++k) {
            batch.Append(&tuples[pos & kTupleMask],
                         &tuples[(pos + 7) & kTupleMask]);
            ++pos;
          }
          selection.clear();
          auto s = prog->EvalBoolBatch(batch, &result, &selection);
          benchmark::DoNotOptimize(s.ok() && selection.size());
        }) /
        static_cast<double>(kBatch);
    check_batched("join_conjunct", compiled, batched_per_token);
  }

  if (failures == 0) {
    std::printf(
        "bench_eval --smoke OK: all shapes >= 3x interpreted->compiled, "
        ">= 2x compiled->batched\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace tman::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      return tman::bench::RunSmoke();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
