// Remote ingestion (Figure 1's data source connections made remote):
// updates flow data source -> wire protocol -> TmanServer -> task queue
// -> drivers. Measures the framed-protocol overhead against in-process
// SubmitUpdate, how ingest throughput scales with concurrent remote
// writers, and the raw encode/decode cost of an update batch frame.
//
// `bench_ingest --smoke` runs a fixed-size loopback ingest and verifies
// the exactly-once count instead of benchmarking; CI uses it as a cheap
// end-to-end check of the whole remote path (~2s).

#include "bench/bench_common.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "core/trigger_manager.h"
#include "ipc/loopback.h"
#include "ipc/remote_client.h"
#include "ipc/server.h"
#include "ipc/socket_transport.h"
#include "ipc/wire_format.h"

namespace tman::bench {
namespace {

constexpr int kSymbols = 64;
constexpr int kTriggers = 100;

/// TriggerManager + TmanServer over a loopback or TCP listener.
struct IngestFixture {
  Database db;
  std::unique_ptr<TriggerManager> tman;
  std::unique_ptr<TmanServer> server;
  LoopbackListener* loopback = nullptr;  // owned by server
  uint16_t tcp_port = 0;
  DataSourceId ds = 0;

  enum class Mode { kLoopback, kTcp };

  explicit IngestFixture(Mode mode, uint32_t max_queue_depth = 4096,
                         bool durable = false) {
    TriggerManagerOptions options;
    options.persistent_queue = false;
    options.durable_wal = durable;
    options.driver_config.num_drivers = 2;
    options.driver_config.period = std::chrono::milliseconds(2);
    tman = std::make_unique<TriggerManager>(&db, options);
    Check(tman->Open(), "open");
    ds = Check(tman->DefineStreamSource("quotes", QuoteSchema()),
               "define source");
    Random rng(11);
    for (int i = 0; i < kTriggers; ++i) {
      std::string cmd = "create trigger t" + std::to_string(i) +
                        " from quotes when quotes.symbol = 'SYM" +
                        std::to_string(rng.Uniform(kSymbols)) +
                        "' do raise event E(quotes.price)";
      Check(tman->ExecuteCommand(cmd).status(), "create trigger");
    }
    Check(tman->Start(), "start");

    std::unique_ptr<Listener> listener;
    if (mode == Mode::kLoopback) {
      auto lb = std::make_unique<LoopbackListener>();
      loopback = lb.get();
      listener = std::move(lb);
    } else {
      auto tl = Check(TcpListener::Bind("127.0.0.1", 0), "bind");
      tcp_port = tl->port();
      listener = std::move(tl);
    }
    TmanServerOptions so;
    so.max_queue_depth = max_queue_depth;
    server = std::make_unique<TmanServer>(tman.get(), std::move(listener), so);
    Check(server->Start(), "server start");
  }

  ~IngestFixture() {
    server->Stop();
    tman->Stop();
  }

  RemoteClientOptions ClientOptions(const std::string& name) {
    RemoteClientOptions co;
    co.client_name = name;
    if (loopback != nullptr) {
      LoopbackListener* lb = loopback;
      co.connector = [lb] { return lb->Connect(); };
    } else {
      uint16_t port = tcp_port;
      co.connector = [port] { return TcpConnect("127.0.0.1", port); };
    }
    return co;
  }

  /// `clients` writers, each submitting `updates_each` ticks, then
  /// draining client acks and the task queue. Returns total updates.
  int64_t RunRound(int clients, int updates_each) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([this, c, updates_each] {
        RemoteClient client(ClientOptions("bench-src-" + std::to_string(c)));
        Check(client.Connect(), "connect");
        Random rng(100 + c);
        for (int i = 0; i < updates_each; ++i) {
          Check(client.SubmitUpdate(QuoteTick(&rng, kSymbols, ds)), "submit");
        }
        Check(client.Drain(), "drain");
        client.Close();
      });
    }
    for (auto& t : threads) t.join();
    tman->Drain();
    return static_cast<int64_t>(clients) * updates_each;
  }
};

// In-process baseline: the same updates through SubmitUpdate directly.
// The gap to BM_LoopbackIngest is the cost of the wire protocol.
void BM_InProcessIngest(benchmark::State& state) {
  IngestFixture fx(IngestFixture::Mode::kLoopback);
  Random rng(7);
  const int kPerIter = 2000;
  for (auto _ : state) {
    for (int i = 0; i < kPerIter; ++i) {
      Check(fx.tman->SubmitUpdate(QuoteTick(&rng, kSymbols, fx.ds)), "submit");
    }
    fx.tman->Drain();
  }
  state.SetItemsProcessed(state.iterations() * kPerIter);
}
BENCHMARK(BM_InProcessIngest)->Unit(benchmark::kMillisecond);

// Remote ingest over the in-memory transport, scaling writer count.
void BM_LoopbackIngest(benchmark::State& state) {
  IngestFixture fx(IngestFixture::Mode::kLoopback);
  const int clients = static_cast<int>(state.range(0));
  const int kPerClient = 2000 / clients;
  int64_t total = 0;
  for (auto _ : state) {
    total += fx.RunRound(clients, kPerClient);
  }
  state.SetItemsProcessed(total);
  state.counters["clients"] = clients;
}
BENCHMARK(BM_LoopbackIngest)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// The same loopback ingest with the write-ahead log on: every acked
// batch is group-committed before the ack. The gap to BM_LoopbackIngest
// is the price of durability.
void BM_DurableLoopbackIngest(benchmark::State& state) {
  IngestFixture fx(IngestFixture::Mode::kLoopback, /*max_queue_depth=*/4096,
                   /*durable=*/true);
  const int clients = static_cast<int>(state.range(0));
  const int kPerClient = 2000 / clients;
  int64_t total = 0;
  for (auto _ : state) {
    total += fx.RunRound(clients, kPerClient);
  }
  state.SetItemsProcessed(total);
  state.counters["clients"] = clients;
}
BENCHMARK(BM_DurableLoopbackIngest)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Remote ingest over real TCP sockets on localhost.
void BM_TcpIngest(benchmark::State& state) {
  IngestFixture fx(IngestFixture::Mode::kTcp);
  const int clients = static_cast<int>(state.range(0));
  const int kPerClient = 2000 / clients;
  int64_t total = 0;
  for (auto _ : state) {
    total += fx.RunRound(clients, kPerClient);
  }
  state.SetItemsProcessed(total);
  state.counters["clients"] = clients;
}
BENCHMARK(BM_TcpIngest)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// Raw wire cost: encode + decode an update batch frame, no I/O.
void BM_UpdateBatchEncodeDecode(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Random rng(13);
  UpdateBatchFrame frame;
  frame.first_seq = 1;
  for (int i = 0; i < n; ++i) {
    frame.updates.push_back(QuoteTick(&rng, kSymbols));
  }
  for (auto _ : state) {
    std::string payload;
    frame.Encode(&payload);
    auto decoded = UpdateBatchFrame::Decode(payload);
    if (!decoded.ok()) std::abort();
    benchmark::DoNotOptimize(decoded->updates.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["batch"] = n;
}
BENCHMARK(BM_UpdateBatchEncodeDecode)->Arg(16)->Arg(256);

/// --smoke: one fixed loopback round, verified, no benchmark library.
int RunSmoke() {
  constexpr int kClients = 4;
  constexpr int kPerClient = 2500;
  IngestFixture fx(IngestFixture::Mode::kLoopback, /*max_queue_depth=*/1024);
  int64_t total = fx.RunRound(kClients, kPerClient);
  TmanServerStats stats = fx.server->stats();
  size_t high_water = fx.tman->task_queue().stats().max_size;
  if (stats.updates_applied != static_cast<uint64_t>(total)) {
    std::fprintf(stderr,
                 "bench_ingest --smoke FAILED: applied %llu of %lld updates\n",
                 static_cast<unsigned long long>(stats.updates_applied),
                 static_cast<long long>(total));
    return 1;
  }
  if (high_water > 1024) {
    std::fprintf(stderr,
                 "bench_ingest --smoke FAILED: queue high-water %zu > 1024\n",
                 high_water);
    return 1;
  }
  std::printf(
      "bench_ingest --smoke OK: %lld updates from %d remote clients applied "
      "exactly once (queue high-water %zu <= 1024)\n",
      static_cast<long long>(total), kClients, high_water);

  // Durability overhead: group commit has to keep the durable ingest
  // path within 2x of the un-durable one. Best-of-three after a warm-up
  // round, so a scheduler hiccup on a loaded CI box doesn't fail the
  // assertion.
  constexpr int kOverheadClients = 2;
  constexpr int kOverheadPerClient = 1200;
  auto best_of_three = [](IngestFixture* fx) {
    fx->RunRound(kOverheadClients, 200);  // warm-up
    double best = 1e30;
    for (int trial = 0; trial < 3; ++trial) {
      auto start = std::chrono::steady_clock::now();
      fx->RunRound(kOverheadClients, kOverheadPerClient);
      double s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
      best = std::min(best, s);
    }
    return best;
  };
  double base_s = 0;
  double durable_s = 0;
  {
    IngestFixture base(IngestFixture::Mode::kLoopback,
                       /*max_queue_depth=*/1024, /*durable=*/false);
    base_s = best_of_three(&base);
  }
  {
    IngestFixture durable(IngestFixture::Mode::kLoopback,
                          /*max_queue_depth=*/1024, /*durable=*/true);
    durable_s = best_of_three(&durable);
  }
  double ratio = durable_s / base_s;
  if (ratio >= 2.0) {
    std::fprintf(stderr,
                 "bench_ingest --smoke FAILED: durable ingest %.1fms vs "
                 "%.1fms un-durable (%.2fx >= 2x)\n",
                 durable_s * 1e3, base_s * 1e3, ratio);
    return 1;
  }
  std::printf(
      "bench_ingest --smoke OK: group commit holds durable ingest at %.2fx "
      "un-durable (%.1fms vs %.1fms for %d updates)\n",
      ratio, durable_s * 1e3, base_s * 1e3,
      kOverheadClients * kOverheadPerClient);
  return 0;
}

}  // namespace
}  // namespace tman::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      return tman::bench::RunSmoke();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
