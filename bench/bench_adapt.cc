// bench_adapt: online adaptive re-optimization.
//
// Measures (a) what the always-on runtime statistics cost on the batched
// match path, (b) what the re-optimizer's organization switch is worth
// on a workload whose static organization choice is mismatched, and (c)
// how fast the adaptive loop converges under a drifting Zipf workload.
//
// `bench_adapt --smoke` runs the checked acceptance bounds the CI gate
// holds:
//   * adapted throughput >= 1.5x the mismatched-static organization
//     after convergence;
//   * runtime-statistics overhead <= 3% on the batched match path.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_common.h"
#include "predindex/cost_model.h"
#include "predindex/reoptimizer.h"
#include "util/sharded_counter.h"

namespace tman::bench {
namespace {

constexpr int kPreds = 2000;
constexpr int kKeySpace = 2048;

/// The mismatched static choice: a list organization pinned by policy
/// (list_max so large size-based promotion never fires). The adaptive
/// runs start here and let the re-optimizer escape.
OrgPolicy StuckOnListPolicy() {
  OrgPolicy policy;
  policy.list_max = 1u << 30;
  return policy;
}

AdaptPolicy EagerPolicy() {
  AdaptPolicy policy;
  policy.min_probes = 64;
  policy.min_gain_ratio = 1.5;
  policy.cooldown_rounds = 0;
  return policy;
}

struct Fixture {
  std::unique_ptr<Database> db;
  std::unique_ptr<PredicateIndex> index;
  AdaptationLog log;
  std::unique_ptr<ConstantSetReoptimizer> reopt;

  explicit Fixture(int preds = kPreds) {
    db = std::make_unique<Database>();
    index = std::make_unique<PredicateIndex>(db.get(), StuckOnListPolicy());
    Check(index->RegisterDataSource(1, QuoteSchema()), "register");
    for (int i = 0; i < preds; ++i) {
      PredicateSpec spec;
      spec.data_source = 1;
      spec.op = OpCode::kInsert;
      spec.predicate = MustParse("q.volume = " + std::to_string(i));
      spec.trigger_id = 1000 + i;
      Check(index->AddPredicate(spec).status(), "add predicate");
    }
    ReoptimizerOptions options;
    options.policy = EagerPolicy();
    reopt = std::make_unique<ConstantSetReoptimizer>(index.get(), &log,
                                                     options);
  }

  /// Probes `count` Zipf-distributed keys (shifted by `drift`) through
  /// the batched match path; returns matches seen.
  uint64_t Pump(int count, uint64_t drift, ZipfGenerator* zipf,
                int batch = 256) {
    uint64_t matches = 0;
    std::vector<UpdateDescriptor> tokens;
    tokens.reserve(batch);
    for (int i = 0; i < count; i += batch) {
      tokens.clear();
      const int lanes = std::min(batch, count - i);
      for (int l = 0; l < lanes; ++l) {
        int64_t key =
            static_cast<int64_t>((zipf->Next() + drift) % kKeySpace);
        tokens.push_back(UpdateDescriptor::Insert(
            1, Tuple({Value::String("SYM"), Value::Float(1.0),
                      Value::Int(key)})));
      }
      Check(index->MatchBatch(tokens, 0, 1,
                              [&](size_t, const PredicateMatch&) {
                                ++matches;
                              }),
            "match batch");
    }
    return matches;
  }

  /// Runs adaptation rounds until a switch installs; returns rounds used.
  int Converge(int max_rounds = 16) {
    ZipfGenerator zipf(kKeySpace, 0.99, 7);
    for (int round = 1; round <= max_rounds; ++round) {
      Pump(1024, 0, &zipf);
      if (reopt->RunOnce().switched > 0) return round;
    }
    return -1;
  }
};

void BM_MatchMismatchedStatic(benchmark::State& state) {
  Fixture fx;
  ZipfGenerator zipf(kKeySpace, 0.99, 11);
  uint64_t matches = 0;
  for (auto _ : state) {
    matches += fx.Pump(256, 0, &zipf);
  }
  state.SetItemsProcessed(state.iterations() * 256);
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_MatchMismatchedStatic)->Unit(benchmark::kMicrosecond);

void BM_MatchAdapted(benchmark::State& state) {
  Fixture fx;
  int rounds = fx.Converge();
  ZipfGenerator zipf(kKeySpace, 0.99, 11);
  uint64_t matches = 0;
  for (auto _ : state) {
    matches += fx.Pump(256, 0, &zipf);
  }
  state.SetItemsProcessed(state.iterations() * 256);
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["convergence_rounds"] = rounds;
}
BENCHMARK(BM_MatchAdapted)->Unit(benchmark::kMicrosecond);

void BM_MatchAdaptedStatsOff(benchmark::State& state) {
  Fixture fx;
  fx.Converge();
  ZipfGenerator zipf(kKeySpace, 0.99, 11);
  runtime_stats::set_enabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.Pump(256, 0, &zipf));
  }
  runtime_stats::set_enabled(true);
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_MatchAdaptedStatsOff)->Unit(benchmark::kMicrosecond);

void BM_AdaptationRound(benchmark::State& state) {
  Fixture fx;
  ZipfGenerator zipf(kKeySpace, 0.99, 11);
  for (auto _ : state) {
    state.PauseTiming();
    fx.Pump(512, 0, &zipf);  // fresh deltas so the round has work to judge
    state.ResumeTiming();
    benchmark::DoNotOptimize(fx.reopt->RunOnce());
  }
}
BENCHMARK(BM_AdaptationRound)->Unit(benchmark::kMicrosecond);

// --- --smoke: the acceptance bounds, checked --------------------------

/// Best-of-N wall time for fn(), in ns. The smoke gates are throughput
/// *ratios*; minimum-of-passes suppresses scheduler noise on busy CI.
template <typename Fn>
double BestNs(int passes, Fn&& fn) {
  double best = 0;
  for (int rep = 0; rep < passes; ++rep) {
    auto start = std::chrono::steady_clock::now();
    fn();
    std::chrono::duration<double, std::nano> elapsed =
        std::chrono::steady_clock::now() - start;
    if (rep == 0 || elapsed.count() < best) best = elapsed.count();
  }
  return best;
}

int RunSmoke() {
  int failures = 0;

  // Convergence under a drifting Zipf workload: the hot keys move, the
  // re-optimizer still escapes the mismatched list organization within a
  // few rounds.
  Fixture adaptive;
  {
    ZipfGenerator zipf(kKeySpace, 0.99, 7);
    int rounds = -1;
    uint64_t drift = 0;
    for (int round = 1; round <= 16; ++round) {
      adaptive.Pump(1024, drift, &zipf);
      drift += 97;  // the hot set moves every round
      if (adaptive.reopt->RunOnce().switched > 0) {
        rounds = round;
        break;
      }
    }
    std::printf("bench_adapt --smoke: converged after %d round(s) under "
                "drifting Zipf (%s)\n",
                rounds, adaptive.log.Tail(1).empty()
                            ? "no log"
                            : adaptive.log.Tail(1)[0].ToString().c_str());
    if (rounds < 0) {
      std::fprintf(stderr, "bench_adapt --smoke FAILED: no organization "
                           "switch within 16 rounds\n");
      ++failures;
    }
  }

  // Adapted vs mismatched-static throughput.
  {
    Fixture static_fx;
    ZipfGenerator z1(kKeySpace, 0.99, 11);
    ZipfGenerator z2(kKeySpace, 0.99, 11);
    constexpr int kTokens = 4096;
    // Warm both paths once before timing.
    static_fx.Pump(256, 0, &z1);
    adaptive.Pump(256, 0, &z2);
    double static_ns =
        BestNs(3, [&] { static_fx.Pump(kTokens, 0, &z1); }) / kTokens;
    double adapted_ns =
        BestNs(3, [&] { adaptive.Pump(kTokens, 0, &z2); }) / kTokens;
    double speedup = static_ns / adapted_ns;
    std::printf(
        "bench_adapt --smoke: mismatched-static %.1f ns/token, adapted "
        "%.1f ns/token, speedup %.2fx\n",
        static_ns, adapted_ns, speedup);
    if (speedup < 1.5) {
      std::fprintf(stderr,
                   "bench_adapt --smoke FAILED: adapted speedup %.2fx < "
                   "1.5x acceptance bound\n",
                   speedup);
      ++failures;
    }
  }

  // Statistics overhead on the batched match path. Each pass times an
  // on/off pair back to back and contributes one ratio; the median of
  // the paired ratios is robust to both slow drift (pairing cancels it)
  // and scheduler outliers (the median discards them) — neither can
  // masquerade as counter cost.
  {
    ZipfGenerator zipf(kKeySpace, 0.99, 13);
    constexpr int kTokens = 16384;
    constexpr int kPasses = 17;
    adaptive.Pump(kTokens, 0, &zipf);  // warm
    std::vector<double> ratios;
    std::vector<double> on_times;
    std::vector<double> off_times;
    for (int rep = 0; rep < kPasses; ++rep) {
      runtime_stats::set_enabled(true);
      double t_on = BestNs(1, [&] { adaptive.Pump(kTokens, 0, &zipf); });
      runtime_stats::set_enabled(false);
      double t_off = BestNs(1, [&] { adaptive.Pump(kTokens, 0, &zipf); });
      ratios.push_back(t_on / t_off);
      on_times.push_back(t_on);
      off_times.push_back(t_off);
    }
    runtime_stats::set_enabled(true);
    auto median = [](std::vector<double> v) {
      std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
      return v[v.size() / 2];
    };
    double on_ns = median(on_times) / kTokens;
    double off_ns = median(off_times) / kTokens;
    double overhead = median(ratios) - 1.0;
    std::printf(
        "bench_adapt --smoke: stats-on %.1f ns/token, stats-off %.1f "
        "ns/token, overhead %.2f%%\n",
        on_ns, off_ns, overhead * 100.0);
    if (overhead > 0.03) {
      std::fprintf(stderr,
                   "bench_adapt --smoke FAILED: statistics overhead "
                   "%.2f%% > 3%% acceptance bound\n",
                   overhead * 100.0);
      ++failures;
    }
  }

  if (failures == 0) {
    std::printf(
        "bench_adapt --smoke OK: convergence under drift, >= 1.5x "
        "adapted speedup, <= 3%% statistics overhead\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace tman::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      return tman::bench::RunSmoke();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
