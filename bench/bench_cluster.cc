// Cluster benchmarks: loopback multi-node throughput through the
// ClusterRouter (1/2/4 members) against the direct single-node ingest
// baseline, plus failover-blackout recovery latency (kill one of three
// members mid-stream, measure until the survivors have re-acked
// everything and the map reconverges).
//
// `bench_cluster --smoke` runs a fast verified round and FAILS unless
// 1-node routed throughput stays >= 0.7x the direct baseline — the
// routing layer (framing, loopback copies, admit checks, acks) must not
// cost more than 30% on top of durable ingest.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/node.h"
#include "cluster/router.h"
#include "core/trigger_manager.h"
#include "db/database.h"
#include "ipc/loopback.h"

namespace tman::bench {
namespace {

TriggerManagerOptions DurableIngestOptions() {
  TriggerManagerOptions opts;
  opts.durable_wal = true;
  opts.persistent_queue = true;
  opts.wal_checkpoint_bytes = 1 << 20;
  return opts;
}

constexpr uint32_t kBatch = 256;

/// One in-process member: in-memory Database (WAL host), TriggerManager,
/// ClusterNode, fed through pollable loopback pipes.
struct BenchNode {
  std::string name;
  std::unique_ptr<Database> db;
  std::unique_ptr<TriggerManager> tman;
  std::unique_ptr<ClusterNode> node;
  bool alive = true;

  void DrainTasks() {
    if (node->processing_held()) return;
    Task task;
    while (tman->task_queue().TryPop(&task)) {
      (void)task.work();
      tman->task_queue().MarkDone();
    }
  }
};

struct BenchCluster {
  ClusterConfig config;
  DataSourceId ds = 0;
  std::vector<std::unique_ptr<BenchNode>> nodes;
  std::unique_ptr<ClusterRouter> router;
  uint64_t now_ms = 0;

  explicit BenchCluster(size_t n) {
    config.num_partitions = 32;
    config.virtual_nodes = 32;
    for (size_t i = 0; i < n; ++i) {
      auto bn = std::make_unique<BenchNode>();
      bn->name = "n" + std::to_string(i);
      bn->db = std::make_unique<Database>();
      bn->tman =
          std::make_unique<TriggerManager>(bn->db.get(), DurableIngestOptions());
      Check(bn->tman->Open(), "open");
      auto src = Check(bn->tman->DefineStreamSource(
                           "feed", Schema({{"id", DataType::kInt}})),
                       "define source");
      ds = src;
      Check(bn->tman
                ->ExecuteCommand(
                    "create trigger watch from feed when feed.id >= 0 "
                    "do raise event Seen(feed.id)")
                .status(),
            "create trigger");
      nodes.push_back(std::move(bn));
    }
    config.ec_key_columns[ds] = 0;  // spread the hot source by id

    ClusterRouterOptions opts;
    opts.config = config;
    opts.membership.heartbeat_interval_ms = 50;
    opts.batch_max_updates = kBatch;
    router = std::make_unique<ClusterRouter>(opts);
    for (size_t i = 0; i < nodes.size(); ++i) {
      BenchNode* bn = nodes[i].get();
      router->AddNode(bn->name, [bn]() -> Result<std::unique_ptr<PollableTransport>> {
        if (!bn->alive) return Status::Unavailable(bn->name + " is down");
        auto pair = CreatePollableLoopbackPair(1 << 20);
        bn->node->AddConnection(std::move(pair.second));
        return std::move(pair.first);
      });
      ClusterNodeOptions node_opts;
      node_opts.name = bn->name;
      node_opts.config = config;
      bn->node = std::make_unique<ClusterNode>(bn->tman.get(), node_opts);
    }
  }

  void PumpAll() {
    router->PumpOnce(++now_ms);
    for (auto& bn : nodes) {
      if (!bn->alive) continue;
      bn->node->Pump();
      bn->DrainTasks();
    }
  }

  /// Pumps until `session` is acked through `target` and node queues are
  /// drained. Returns false on stall (bounded pump budget exceeded).
  bool RunUntilAcked(const std::string& session, uint64_t target) {
    for (uint64_t pump = 0; pump < 2000000; ++pump) {
      if (router->AckedSeq(session) >= target && router->Idle()) {
        bool drained = true;
        for (auto& bn : nodes) {
          if (bn->alive && (!bn->tman->task_queue().empty() ||
                            bn->tman->task_queue().in_flight() != 0)) {
            drained = false;
            break;
          }
        }
        if (drained) return true;
      }
      PumpAll();
    }
    return false;
  }
};

/// Routed tokens/sec through a cluster of `num_nodes` loopback members.
double MeasureRoutedThroughput(size_t num_nodes, uint64_t tokens) {
  BenchCluster cluster(num_nodes);
  // Warm the channels (joins, map installs) before timing.
  for (int i = 0; i < 200; ++i) cluster.PumpAll();

  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < tokens; ++i) {
    cluster.router->Submit(
        "bench", UpdateDescriptor::Insert(
                     cluster.ds, Tuple({Value::Int(static_cast<int64_t>(i))})));
    if ((i + 1) % kBatch == 0) cluster.PumpAll();
  }
  if (!cluster.RunUntilAcked("bench", tokens)) {
    std::fprintf(stderr, "bench_cluster: routed run stalled\n");
    std::abort();
  }
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return static_cast<double>(tokens) / elapsed.count();
}

/// Direct single-node baseline: SubmitUpdateBatch into one durable
/// TriggerManager (same WAL + trigger work, no routing layer).
double MeasureDirectThroughput(uint64_t tokens) {
  Database db;
  TriggerManager tman(&db, DurableIngestOptions());
  Check(tman.Open(), "open");
  DataSourceId ds = Check(
      tman.DefineStreamSource("feed", Schema({{"id", DataType::kInt}})),
      "define source");
  Check(tman.ExecuteCommand("create trigger watch from feed when feed.id >= 0 "
                            "do raise event Seen(feed.id)")
            .status(),
        "create trigger");

  auto drain = [&] {
    Task task;
    while (tman.task_queue().TryPop(&task)) {
      (void)task.work();
      tman.task_queue().MarkDone();
    }
  };

  auto start = std::chrono::steady_clock::now();
  std::vector<UpdateDescriptor> batch;
  batch.reserve(kBatch);
  for (uint64_t i = 0; i < tokens; ++i) {
    batch.push_back(UpdateDescriptor::Insert(
        ds, Tuple({Value::Int(static_cast<int64_t>(i))})));
    if (batch.size() == kBatch || i + 1 == tokens) {
      Check(tman.SubmitUpdateBatch(batch, nullptr, nullptr), "submit");
      batch.clear();
      drain();
    }
  }
  drain();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return static_cast<double>(tokens) / elapsed.count();
}

/// Failover blackout: stream through 3 members, kill one mid-stream,
/// return the wall time from the kill until every token is re-acked and
/// the map reconverged on the survivors.
double MeasureFailoverBlackoutMs(uint64_t tokens) {
  BenchCluster cluster(3);
  for (int i = 0; i < 200; ++i) cluster.PumpAll();

  uint64_t kill_at = tokens / 2;
  for (uint64_t i = 0; i < kill_at; ++i) {
    cluster.router->Submit(
        "bench", UpdateDescriptor::Insert(
                     cluster.ds, Tuple({Value::Int(static_cast<int64_t>(i))})));
    if ((i + 1) % kBatch == 0) cluster.PumpAll();
  }

  // Kill one member with in-flight work, then time recovery.
  BenchNode* victim = cluster.nodes[1].get();
  victim->node.reset();
  victim->tman.reset();
  victim->alive = false;

  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = kill_at; i < tokens; ++i) {
    cluster.router->Submit(
        "bench", UpdateDescriptor::Insert(
                     cluster.ds, Tuple({Value::Int(static_cast<int64_t>(i))})));
    if ((i + 1) % kBatch == 0) cluster.PumpAll();
  }
  if (!cluster.RunUntilAcked("bench", tokens)) {
    std::fprintf(stderr, "bench_cluster: failover run stalled\n");
    std::abort();
  }
  std::chrono::duration<double, std::milli> blackout =
      std::chrono::steady_clock::now() - start;
  return blackout.count();
}

// --- google-benchmark entry points -------------------------------------

void BM_ClusterRoutedThroughput(benchmark::State& state) {
  size_t num_nodes = static_cast<size_t>(state.range(0));
  uint64_t tokens = 8192;
  double last = 0;
  for (auto _ : state) {
    last = MeasureRoutedThroughput(num_nodes, tokens);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(tokens));
  }
  state.counters["tokens_per_s"] = last;
}
BENCHMARK(BM_ClusterRoutedThroughput)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_DirectIngestBaseline(benchmark::State& state) {
  uint64_t tokens = 8192;
  double last = 0;
  for (auto _ : state) {
    last = MeasureDirectThroughput(tokens);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(tokens));
  }
  state.counters["tokens_per_s"] = last;
}
BENCHMARK(BM_DirectIngestBaseline)->Unit(benchmark::kMillisecond);

void BM_ClusterFailoverBlackout(benchmark::State& state) {
  uint64_t tokens = 8192;
  double last = 0;
  for (auto _ : state) {
    last = MeasureFailoverBlackoutMs(tokens);
  }
  state.counters["blackout_ms"] = last;
}
BENCHMARK(BM_ClusterFailoverBlackout)->Unit(benchmark::kMillisecond);

// --- --smoke: the acceptance bound, checked ----------------------------

int RunSmoke() {
  const uint64_t kTokens = 8192;
  double direct = MeasureDirectThroughput(kTokens);
  double routed = MeasureRoutedThroughput(1, kTokens);
  double ratio = routed / direct;
  std::printf(
      "bench_cluster --smoke: direct %.0f tokens/s, routed(1 node) %.0f "
      "tokens/s, ratio %.2fx\n",
      direct, routed, ratio);

  double blackout = MeasureFailoverBlackoutMs(kTokens);
  std::printf("bench_cluster --smoke: failover blackout %.1f ms "
              "(kill 1 of 3 mid-stream, re-ack + reconverge)\n",
              blackout);

  if (ratio < 0.7) {
    std::printf(
        "bench_cluster --smoke FAILED: routed %.2fx < 0.7x direct baseline\n",
        ratio);
    return 1;
  }
  std::printf("bench_cluster --smoke OK: routed >= 0.7x direct\n");
  return 0;
}

}  // namespace
}  // namespace tman::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      return tman::bench::RunSmoke();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
