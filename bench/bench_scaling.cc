// Hot-path scaling (§6: "the number of concurrent TriggerMan driver
// processes ... can be tuned"): aggregate token throughput as the
// driver count grows, plus per-choke-point microbenchmarks for the
// three sharded layers (task queue, predicate index stripes, trigger
// cache shards).
//
// The driver-scaling benchmark models the blocking part of rule-action
// work — delivering a raised event to a remote consumer, calling a UDF
// that does I/O — as a fixed per-event sleep. That is the regime the
// paper's driver formula targets (concurrency_level = the fraction of
// time a driver spends blocked): drivers overlap their waits, so
// throughput scales with the driver count even on a single CPU. The
// pure-CPU contention microbenchmarks (->Threads(N)) additionally show
// that the sharded structures do not serialize on a global lock when
// real cores are available.
//
// `bench_scaling --smoke` runs the 1-driver and 8-driver rounds once
// and asserts the >=3x aggregate-throughput acceptance bound; CI runs
// it on every push.

#include "bench/bench_common.h"

#include <chrono>
#include <thread>
#include <vector>

#include "cache/trigger_cache.h"
#include "core/trigger.h"
#include "core/trigger_manager.h"
#include "runtime/task_queue.h"

namespace tman::bench {
namespace {

constexpr int kSymbols = 64;
constexpr int kTriggers = 192;  // ~3 predicates per symbol
constexpr auto kDeliveryLatency = std::chrono::microseconds(500);

/// TriggerManager with N drivers, a predicate-index-bound trigger
/// population, and a blocking event consumer that models downstream
/// delivery latency.
struct ScalingFixture {
  Database db;
  std::unique_ptr<TriggerManager> tman;
  DataSourceId ds = 0;

  /// `token_batch_width` overrides TriggerManagerOptions::batch_size (the
  /// columnar TokenBatch width, 0 = default); `blocking_consumer` toggles
  /// the per-event delivery sleep — off for CPU-bound rounds that measure
  /// the evaluation pipeline itself.
  explicit ScalingFixture(uint32_t num_drivers,
                          uint32_t token_batch_width = 0,
                          bool blocking_consumer = true) {
    TriggerManagerOptions options;
    options.persistent_queue = false;  // hot path: in-memory delivery
    options.driver_config.num_drivers = num_drivers;
    options.driver_config.period = std::chrono::milliseconds(1);
    if (token_batch_width != 0) options.batch_size = token_batch_width;
    tman = std::make_unique<TriggerManager>(&db, options);
    Check(tman->Open(), "open");
    ds = Check(tman->DefineStreamSource("quotes", QuoteSchema()),
               "define source");
    Random rng(11);
    for (int i = 0; i < kTriggers; ++i) {
      std::string cmd = "create trigger t" + std::to_string(i) +
                        " from quotes when quotes.symbol = 'SYM" +
                        std::to_string(rng.Uniform(kSymbols)) +
                        "' do raise event E(quotes.price)";
      Check(tman->ExecuteCommand(cmd).status(), "create trigger");
    }
    // The blocking stage: every firing delivers its event to a consumer
    // whose handling takes kDeliveryLatency of wall time (remote push,
    // blocking UDF, engine round trip). Drivers overlap these waits.
    if (blocking_consumer) {
      tman->events().Register("*", [](const Event&) {
        std::this_thread::sleep_for(kDeliveryLatency);
      });
    }
    Check(tman->Start(), "start");
  }

  ~ScalingFixture() { tman->Stop(); }

  /// Submits `tokens` updates in batches of `batch_size` and drains.
  void RunRound(int tokens, int batch_size) {
    Random rng(7);
    std::vector<UpdateDescriptor> batch;
    batch.reserve(batch_size);
    for (int i = 0; i < tokens; ++i) {
      batch.push_back(QuoteTick(&rng, kSymbols, ds));
      if (static_cast<int>(batch.size()) == batch_size) {
        Check(tman->SubmitUpdateBatch(batch), "submit batch");
        batch.clear();
      }
    }
    if (!batch.empty()) Check(tman->SubmitUpdateBatch(batch), "submit batch");
    tman->Drain();
  }
};

// --- the headline: aggregate token throughput vs driver count ---------------

void BM_DriverScalingTokens(benchmark::State& state) {
  const auto num_drivers = static_cast<uint32_t>(state.range(0));
  // Width 1: blocking deliveries overlap best as per-token tasks (a wide
  // batch would serialize its deliveries inside one driver) — this is
  // exactly what the batch_size knob is for. BM_TokenBatchWidth measures
  // the CPU-bound regime where wide batches win.
  ScalingFixture fx(num_drivers, /*token_batch_width=*/1);
  const int kTokensPerIter = 512;
  for (auto _ : state) {
    fx.RunRound(kTokensPerIter, /*batch_size=*/64);
  }
  state.SetItemsProcessed(state.iterations() * kTokensPerIter);
  state.counters["drivers"] = num_drivers;
}
BENCHMARK(BM_DriverScalingTokens)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- choke point 1: the sharded task queue ----------------------------------

// Contended push+pop from N threads against one queue. Before sharding
// every operation took the single queue mutex; now a thread usually
// touches only its home shard.
void BM_TaskQueuePushPopContended(benchmark::State& state) {
  static TaskQueue* queue = nullptr;
  if (state.thread_index() == 0) queue = new TaskQueue();
  for (auto _ : state) {
    Task t;
    t.kind = TaskKind::kProcessToken;
    t.work = [] { return Status::OK(); };
    queue->Push(std::move(t));
    Task out;
    if (queue->TryPop(&out)) queue->MarkDone();
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete queue;
    queue = nullptr;
  }
}
BENCHMARK(BM_TaskQueuePushPopContended)->Threads(1)->Threads(4)->Threads(8);

// Batch amortization: 64 tokens through one PushBatch vs 64 Push calls.
void BM_TaskQueuePushOneByOne(benchmark::State& state) {
  TaskQueue queue;
  const int kBatch = 64;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      Task t;
      t.kind = TaskKind::kProcessToken;
      t.work = [] { return Status::OK(); };
      queue.Push(std::move(t));
    }
    Task out;
    while (queue.TryPop(&out)) queue.MarkDone();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_TaskQueuePushOneByOne);

void BM_TaskQueuePushBatch(benchmark::State& state) {
  TaskQueue queue;
  const int kBatch = 64;
  for (auto _ : state) {
    std::vector<Task> batch;
    batch.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      Task t;
      t.kind = TaskKind::kProcessToken;
      t.work = [] { return Status::OK(); };
      batch.push_back(std::move(t));
    }
    queue.PushBatch(std::move(batch));
    Task out;
    while (queue.TryPop(&out)) queue.MarkDone();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_TaskQueuePushBatch);

// Consumer-side mirror: drain 256 queued tasks through PopBatch at
// claim widths 8/64/256 — one shard-lock acquisition per claim instead
// of one per task.
void BM_TaskQueuePopBatch(benchmark::State& state) {
  TaskQueue queue;
  const auto width = static_cast<size_t>(state.range(0));
  const int kTasks = 256;
  std::vector<Task> out;
  out.reserve(width);
  for (auto _ : state) {
    for (int i = 0; i < kTasks; ++i) {
      Task t;
      t.kind = TaskKind::kProcessToken;
      t.work = [] { return Status::OK(); };
      queue.Push(std::move(t));
    }
    size_t n;
    while ((n = queue.PopBatch(&out, width)) != 0) {
      for (size_t k = 0; k < n; ++k) queue.MarkDone();
      out.clear();
    }
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
}
BENCHMARK(BM_TaskQueuePopBatch)->Arg(8)->Arg(64)->Arg(256);

// --- batched dispatch: columnar token-batch width sweep ---------------------

// End-to-end CPU-bound pipeline (no blocking consumer) at TokenBatch
// widths 8/64/256: ingestion chunks flow through PushBatchToShard ->
// PopBatch -> ProcessTokenBatch -> the batched compiled evaluator, so
// the per-token cost shows the batch width amortizing dispatch and
// enabling the columnar kernels.
void BM_TokenBatchWidth(benchmark::State& state) {
  const auto width = static_cast<uint32_t>(state.range(0));
  ScalingFixture fx(/*num_drivers=*/2, /*token_batch_width=*/width,
                    /*blocking_consumer=*/false);
  const int kTokensPerIter = 2048;
  for (auto _ : state) {
    fx.RunRound(kTokensPerIter, /*batch_size=*/256);
  }
  state.SetItemsProcessed(state.iterations() * kTokensPerIter);
  state.counters["batch"] = width;
}
BENCHMARK(BM_TokenBatchWidth)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- choke point 2: the striped predicate index -----------------------------

// Concurrent Match against distinct data sources: each thread's lookups
// take only its source's stripe read lock. Before striping all matchers
// shared one reader-writer lock (and create/drop stalled all of them).
void BM_PredicateIndexMatchStriped(benchmark::State& state) {
  static PredicateIndex* index = nullptr;
  constexpr int kSources = 8;
  if (state.thread_index() == 0) {
    index = new PredicateIndex(nullptr, OrgPolicy());
    Schema schema({{"k", DataType::kInt}, {"v", DataType::kInt}});
    for (int s = 1; s <= kSources; ++s) {
      Check(index->RegisterDataSource(s, schema), "register");
      for (int i = 0; i < 100; ++i) {
        PredicateSpec spec;
        spec.data_source = static_cast<DataSourceId>(s);
        spec.op = OpCode::kInsertOrUpdate;
        spec.predicate = MustParse("t.k = " + std::to_string(i % 50));
        spec.trigger_id = static_cast<TriggerId>(s * 1000 + i);
        Check(index->AddPredicate(spec).status(), "add predicate");
      }
    }
  }
  const auto source = static_cast<DataSourceId>(
      (state.thread_index() % kSources) + 1);
  Random rng(static_cast<uint64_t>(state.thread_index()) + 1);
  for (auto _ : state) {
    Tuple t({Value::Int(rng.UniformRange(0, 49)), Value::Int(1)});
    std::vector<PredicateMatch> out;
    Check(index->Match(UpdateDescriptor::Insert(source, t), &out), "match");
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete index;
    index = nullptr;
  }
}
BENCHMARK(BM_PredicateIndexMatchStriped)->Threads(1)->Threads(4)->Threads(8);

// --- choke point 3: the sharded trigger cache -------------------------------

// Hot-hit pins from N threads. A hit takes the shard's *read* lock and
// sets an atomic reference bit — no LRU list splice, so concurrent pins
// of hot triggers serialize on nothing.
void BM_TriggerCachePinHot(benchmark::State& state) {
  static TriggerCache* cache = nullptr;
  constexpr int kHot = 64;
  if (state.thread_index() == 0) {
    cache = new TriggerCache(
        16384,
        [](TriggerId id) -> Result<TriggerHandle> {
          auto t = std::make_shared<TriggerRuntime>();
          t->id = id;
          return TriggerHandle(std::move(t));
        },
        /*num_shards=*/16);
    for (TriggerId id = 1; id <= kHot; ++id) {
      Check(cache->Pin(id).status(), "warm");
    }
  }
  Random rng(static_cast<uint64_t>(state.thread_index()) + 3);
  for (auto _ : state) {
    auto h = cache->Pin(static_cast<TriggerId>(rng.UniformRange(1, kHot)));
    if (!h.ok()) std::abort();
    benchmark::DoNotOptimize(h->get());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete cache;
    cache = nullptr;
  }
}
BENCHMARK(BM_TriggerCachePinHot)->Threads(1)->Threads(4)->Threads(8);

// --- --smoke: the acceptance bound, checked -----------------------------------

/// One timed round at a given driver count; returns tokens per second.
double SmokeRound(uint32_t num_drivers, int tokens) {
  // Per-token tasks, as in BM_DriverScalingTokens: the bound asserts
  // driver overlap of blocking deliveries, so the fixture picks the
  // batch width that regime calls for.
  ScalingFixture fx(num_drivers, /*token_batch_width=*/1);
  // Warm the caches and the trigger pins outside the timed region.
  fx.RunRound(/*tokens=*/32, /*batch_size=*/32);
  auto start = std::chrono::steady_clock::now();
  fx.RunRound(tokens, /*batch_size=*/64);
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return tokens / elapsed.count();
}

int RunSmoke() {
  constexpr int kTokens = 384;
  double one = SmokeRound(1, kTokens);
  double eight = SmokeRound(8, kTokens);
  double speedup = eight / one;
  std::printf(
      "bench_scaling --smoke: 1 driver %.0f tokens/s, 8 drivers %.0f "
      "tokens/s, speedup %.2fx\n",
      one, eight, speedup);
  if (speedup < 3.0) {
    std::fprintf(stderr,
                 "bench_scaling --smoke FAILED: 8-driver speedup %.2fx < "
                 "3x acceptance bound\n",
                 speedup);
    return 1;
  }
  std::printf("bench_scaling --smoke OK: speedup %.2fx >= 3x\n", speedup);
  return 0;
}

}  // namespace
}  // namespace tman::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      return tman::bench::RunSmoke();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
