// Experiment E6 (§3): update delivery. The current TriggerMan stages
// update descriptors in a table acting as a queue ("the safety of
// persistent update queuing"); a planned main-memory queue "will deliver
// updates faster, but the safety ... will be lost". This bench quantifies
// that trade: persistent TableQueue (with simulated page latency) vs the
// in-memory task queue.

#include "bench/bench_common.h"

#include "runtime/task_queue.h"
#include "storage/table_queue.h"

namespace tman::bench {
namespace {

std::string SampleDescriptor() {
  auto token = UpdateDescriptor::Update(
      7,
      Tuple({Value::String("SYM1"), Value::Float(99.5), Value::Int(100)}),
      Tuple({Value::String("SYM1"), Value::Float(101.25), Value::Int(200)}));
  std::string record;
  token.Serialize(&record);
  return record;
}

void BM_PersistentQueueEnqueueDequeue(benchmark::State& state) {
  uint64_t latency_ns = static_cast<uint64_t>(state.range(0));
  DiskManager disk(latency_ns);
  BufferPool pool(&disk, 128);
  PageId meta = Check(TableQueue::Create(&pool), "create queue");
  TableQueue queue(&pool, meta);
  std::string record = SampleDescriptor();
  for (auto _ : state) {
    Check(queue.Enqueue(record), "enqueue");
    auto out = queue.Dequeue();
    Check(out.status(), "dequeue");
    benchmark::DoNotOptimize(*out);
  }
  state.counters["disk_latency_ns"] = static_cast<double>(latency_ns);
}
BENCHMARK(BM_PersistentQueueEnqueueDequeue)
    ->Arg(0)
    ->Arg(20000)
    ->Unit(benchmark::kMicrosecond);

// Durable variant: the dirty queue pages are flushed after every enqueue
// (what "the safety of persistent update queuing" actually costs — a hot
// buffer pool hides the page reads but not the committed writes).
void BM_PersistentQueueDurableEnqueue(benchmark::State& state) {
  uint64_t latency_ns = static_cast<uint64_t>(state.range(0));
  DiskManager disk(latency_ns);
  BufferPool pool(&disk, 128);
  PageId meta = Check(TableQueue::Create(&pool), "create queue");
  TableQueue queue(&pool, meta);
  std::string record = SampleDescriptor();
  for (auto _ : state) {
    Check(queue.Enqueue(record), "enqueue");
    Check(pool.FlushAll(), "flush");
    Check(queue.Dequeue().status(), "dequeue");
  }
  state.counters["disk_latency_ns"] = static_cast<double>(latency_ns);
}
BENCHMARK(BM_PersistentQueueDurableEnqueue)
    ->Arg(0)
    ->Arg(20000)
    ->Unit(benchmark::kMicrosecond);

void BM_MemoryQueuePushPop(benchmark::State& state) {
  TaskQueue queue;
  for (auto _ : state) {
    Task task;
    task.kind = TaskKind::kProcessToken;
    task.work = [] { return Status::OK(); };
    queue.Push(std::move(task));
    Task out;
    queue.TryPop(&out);
    queue.MarkDone();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MemoryQueuePushPop)->Unit(benchmark::kMicrosecond);

// Backlog behavior: enqueue a burst, then drain (pages chain and are
// reclaimed).
void BM_PersistentQueueBurst(benchmark::State& state) {
  int64_t burst = state.range(0);
  DiskManager disk;
  BufferPool pool(&disk, 128);
  PageId meta = Check(TableQueue::Create(&pool), "create queue");
  TableQueue queue(&pool, meta);
  std::string record = SampleDescriptor();
  for (auto _ : state) {
    for (int64_t i = 0; i < burst; ++i) {
      Check(queue.Enqueue(record), "enqueue");
    }
    for (int64_t i = 0; i < burst; ++i) {
      Check(queue.Dequeue().status(), "dequeue");
    }
  }
  state.counters["burst"] = static_cast<double>(burst);
}
BENCHMARK(BM_PersistentQueueBurst)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tman::bench

BENCHMARK_MAIN();
