// Experiment E1 (§5.2) and F4 (Figure 4): the four constant-set
// organizations across equivalence-class sizes, and the benefit of the
// normalized (common-sub-expression-eliminated) constant sets.
//
// All four organizations hold the same equivalence class — N instances of
// `t.symbol = 'SYM<k>'` with distinct constants — and serve the same
// probe stream. Database-backed organizations run against MiniDB with a
// simulated 20 µs page latency so the disk/memory tradeoff is visible the
// way it was on 1999 hardware (relative shape, not absolute numbers).

#include <map>
#include <memory>
#include <utility>

#include "bench/bench_common.h"

namespace tman::bench {
namespace {

struct OrgFixture {
  std::unique_ptr<Database> db;
  std::unique_ptr<PredicateIndex> index;
};

/// Builds (once per organization/size pair) an equivalence class of
/// `class_size` equality predicates under the forced organization.
OrgFixture* Fixture(OrgType org, int64_t class_size,
                    uint64_t disk_latency_ns) {
  static std::map<std::pair<int, int64_t>, std::unique_ptr<OrgFixture>>*
      cache = new std::map<std::pair<int, int64_t>,
                           std::unique_ptr<OrgFixture>>();
  auto key = std::make_pair(static_cast<int>(org), class_size);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second.get();

  auto fx = std::make_unique<OrgFixture>();
  DatabaseOptions db_opts;
  db_opts.disk_latency_ns = disk_latency_ns;
  db_opts.buffer_pool_frames = 256;  // small pool: large tables spill
  fx->db = std::make_unique<Database>(db_opts);
  OrgPolicy policy;
  policy.forced = true;
  policy.forced_type = org;
  fx->index = std::make_unique<PredicateIndex>(fx->db.get(), policy);
  Check(fx->index->RegisterDataSource(1, QuoteSchema()), "register");

  // Build with latency off (creation cost is not what E1 measures).
  fx->db->disk()->set_access_latency_ns(0);
  for (int64_t i = 0; i < class_size; ++i) {
    PredicateSpec spec;
    spec.data_source = 1;
    spec.op = OpCode::kInsertOrUpdate;
    spec.predicate = MustParse("t.symbol = 'SYM" + std::to_string(i) + "'");
    spec.trigger_id = static_cast<TriggerId>(i + 1);
    Check(fx->index->AddPredicate(spec).status(), "add predicate");
  }
  fx->db->disk()->set_access_latency_ns(disk_latency_ns);
  OrgFixture* out = fx.get();
  (*cache)[key] = std::move(fx);
  return out;
}

void RunOrgBenchmark(benchmark::State& state, OrgType org,
                     uint64_t disk_latency_ns) {
  int64_t class_size = state.range(0);
  OrgFixture* fx = Fixture(org, class_size, disk_latency_ns);
  Random rng(7);
  for (auto _ : state) {
    std::vector<PredicateMatch> out;
    Check(fx->index->Match(QuoteTick(&rng, static_cast<int>(class_size)),
                           &out),
          "match");
    benchmark::DoNotOptimize(out);
  }
  state.counters["class_size"] = static_cast<double>(class_size);
}

void BM_Org1_MemoryList(benchmark::State& state) {
  RunOrgBenchmark(state, OrgType::kMemoryList, 0);
}
void BM_Org2_MemoryIndex(benchmark::State& state) {
  RunOrgBenchmark(state, OrgType::kMemoryIndex, 0);
}
void BM_Org3_DbTable(benchmark::State& state) {
  RunOrgBenchmark(state, OrgType::kDbTable, 20000);
}
void BM_Org4_DbIndexedTable(benchmark::State& state) {
  RunOrgBenchmark(state, OrgType::kDbIndexedTable, 20000);
}

BENCHMARK(BM_Org1_MemoryList)->Arg(4)->Arg(64)->Arg(1024)->Arg(16384)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Org2_MemoryIndex)->Arg(4)->Arg(64)->Arg(1024)->Arg(16384)
    ->Arg(131072)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Org3_DbTable)->Arg(4)->Arg(64)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Org4_DbIndexedTable)->Arg(4)->Arg(64)->Arg(1024)->Arg(16384)
    ->Arg(131072)->Unit(benchmark::kMicrosecond);

// Figure 4: many triggers sharing few distinct constants. The normalized
// constant set tests each distinct constant once and walks only the
// matching triggerID set, so cost tracks matches, not trigger count.
void BM_CommonSubexpressionElimination(benchmark::State& state) {
  int64_t triggers = 65536;
  int64_t distinct_constants = state.range(0);
  PredicateIndex index(nullptr, OrgPolicy());
  Check(index.RegisterDataSource(1, QuoteSchema()), "register");
  for (int64_t i = 0; i < triggers; ++i) {
    PredicateSpec spec;
    spec.data_source = 1;
    spec.op = OpCode::kInsertOrUpdate;
    spec.predicate = MustParse(
        "t.symbol = 'SYM" + std::to_string(i % distinct_constants) + "'");
    spec.trigger_id = static_cast<TriggerId>(i + 1);
    Check(index.AddPredicate(spec).status(), "add predicate");
  }
  Random rng(7);
  uint64_t matches = 0;
  for (auto _ : state) {
    std::vector<PredicateMatch> out;
    Check(index.Match(
              QuoteTick(&rng, static_cast<int>(distinct_constants)), &out),
          "match");
    matches += out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["distinct_constants"] =
      static_cast<double>(distinct_constants);
  state.counters["matches_per_token"] =
      static_cast<double>(matches) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_CommonSubexpressionElimination)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(65536)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tman::bench

BENCHMARK_MAIN();
