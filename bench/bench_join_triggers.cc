// Experiment E4 (§5.4): join triggers. Selection predicates are tested by
// the shared predicate index *before* any A-TREAT join work happens:
// when join triggers carry a selective predicate on the updated source,
// per-token cost is proportional to the triggers whose selection matches,
// not to the installed population. Triggers with an unselective event
// node (every token reaches every network) show the contrast — §7's
// design advice exists precisely because of that case.

#include <map>
#include <memory>

#include "bench/bench_common.h"

#include "core/trigger_manager.h"

namespace tman::bench {
namespace {

constexpr int kNeighborhoods = 200;

struct RealEstate {
  Database db;
  std::unique_ptr<TriggerManager> tman;

  RealEstate(int num_triggers, bool selective) {
    Check(db.CreateTable("salesperson",
                         Schema({{"spno", DataType::kInt},
                                 {"name", DataType::kVarchar}}))
              .status(),
          "create salesperson");
    Check(db.CreateTable("house", Schema({{"hno", DataType::kInt},
                                          {"price", DataType::kFloat},
                                          {"nno", DataType::kInt}}))
              .status(),
          "create house");
    Check(db.CreateTable("represents", Schema({{"spno", DataType::kInt},
                                               {"nno", DataType::kInt}}))
              .status(),
          "create represents");
    // Join-attribute indexes: virtual alpha nodes probe these instead of
    // scanning (as a DataBlade would run indexed SQL inside Informix).
    Check(db.CreateIndex("idx_rep_nno", "represents", {"nno"}), "idx");
    Check(db.CreateIndex("idx_sp_spno", "salesperson", {"spno"}), "idx");
    tman = std::make_unique<TriggerManager>(&db);
    Check(tman->Open(), "open");
    Check(tman->DefineLocalTableSource("salesperson").status(), "src");
    Check(tman->DefineLocalTableSource("house").status(), "src");
    Check(tman->DefineLocalTableSource("represents").status(), "src");

    Random rng(23);
    for (int i = 0; i < num_triggers; ++i) {
      int nno = static_cast<int>(rng.Uniform(kNeighborhoods));
      Check(db.Insert("salesperson",
                      Tuple({Value::Int(i), Value::String(
                                                "sp" + std::to_string(i))}))
                .status(),
            "insert sp");
      Check(db.Insert("represents",
                      Tuple({Value::Int(i), Value::Int(nno)}))
                .status(),
            "insert rep");
      // Selective triggers pin the house node to the salesperson's own
      // neighborhood — an indexable equality the predicate index
      // discriminates on. Unselective triggers accept any house token
      // and leave all filtering to the join.
      std::string house_cond =
          selective ? " and h.nno = " + std::to_string(nno) : "";
      std::string cmd =
          "create trigger alert" + std::to_string(i) +
          " on insert to house from salesperson s, house h, represents r "
          "when s.name = 'sp" + std::to_string(i) +
          "' and s.spno = r.spno and r.nno = h.nno" + house_cond +
          " do raise event E(h.hno)";
      Check(tman->ExecuteCommand(cmd).status(), "create trigger");
    }
    Check(tman->ProcessPending(), "drain");
  }
};

RealEstate* Fixture(int num_triggers, bool selective) {
  static std::map<std::pair<int, bool>, std::unique_ptr<RealEstate>>* cache =
      new std::map<std::pair<int, bool>, std::unique_ptr<RealEstate>>();
  auto key = std::make_pair(num_triggers, selective);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second.get();
  auto fx = std::make_unique<RealEstate>(num_triggers, selective);
  RealEstate* out = fx.get();
  (*cache)[key] = std::move(fx);
  return out;
}

void RunHouseInserts(benchmark::State& state, bool selective) {
  int num_triggers = static_cast<int>(state.range(0));
  RealEstate* fx = Fixture(num_triggers, selective);
  Random rng(5);
  static int64_t hno = 1000000;
  uint64_t before = fx->tman->stats().rule_firings;
  for (auto _ : state) {
    Check(fx->db
              .Insert("house",
                      Tuple({Value::Int(hno++), Value::Float(100000),
                             Value::Int(static_cast<int64_t>(
                                 rng.Uniform(kNeighborhoods)))}))
              .status(),
          "insert house");
    Check(fx->tman->ProcessPending(), "process");
  }
  state.counters["join_triggers"] = static_cast<double>(num_triggers);
  state.counters["firings_per_token"] =
      static_cast<double>(fx->tman->stats().rule_firings - before) /
      static_cast<double>(state.iterations());
}

void BM_SelectiveJoinTriggers(benchmark::State& state) {
  RunHouseInserts(state, /*selective=*/true);
}
BENCHMARK(BM_SelectiveJoinTriggers)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMicrosecond);

void BM_UnselectiveJoinTriggers(benchmark::State& state) {
  RunHouseInserts(state, /*selective=*/false);
}
BENCHMARK(BM_UnselectiveJoinTriggers)
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMicrosecond);

// A token that matches no selection predicate is rejected by the
// predicate index without touching any network, regardless of how many
// join triggers exist.
void BM_NonMatchingToken(benchmark::State& state) {
  int num_triggers = static_cast<int>(state.range(0));
  RealEstate* fx = Fixture(num_triggers, /*selective=*/true);
  static int64_t spno = 5000000;
  for (auto _ : state) {
    Check(fx->db
              .Insert("salesperson", Tuple({Value::Int(spno++),
                                            Value::String("nobody")}))
              .status(),
          "insert");
    Check(fx->tman->ProcessPending(), "process");
  }
  state.counters["join_triggers"] = static_cast<double>(num_triggers);
}
BENCHMARK(BM_NonMatchingToken)
    ->Arg(10)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tman::bench

BENCHMARK_MAIN();
