// Experiment E5: range-predicate indexing. The paper (and [Hans96b])
// motivates an interval index for inequality selection predicates; the
// alternative is testing every range predicate in the class. Stabbing
// cost with the interval index is O(log n + matches); the list is O(n).

#include "bench/bench_common.h"

#include "predindex/interval_index.h"

namespace tman::bench {
namespace {

// Narrow intervals: few matches per stab, where the index shines.
void SetupIntervals(IntervalIndex* index, int64_t n, Random* rng,
                    int64_t domain, int64_t width) {
  for (int64_t i = 0; i < n; ++i) {
    IntervalIndex::Interval iv;
    int64_t lo = rng->UniformRange(0, domain);
    iv.lo = Value::Int(lo);
    iv.hi = Value::Int(lo + width);
    iv.id = static_cast<uint64_t>(i);
    index->Insert(iv);
  }
}

void BM_IntervalIndexStab(benchmark::State& state) {
  int64_t n = state.range(0);
  Random rng(3);
  IntervalIndex index;
  SetupIntervals(&index, n, &rng, 1000000, 100);
  Random probe_rng(7);
  uint64_t matches = 0;
  for (auto _ : state) {
    uint64_t count = 0;
    index.Stab(Value::Int(probe_rng.UniformRange(0, 1000000)),
               [&count](const IntervalIndex::Interval&) { ++count; });
    matches += count;
    benchmark::DoNotOptimize(count);
  }
  state.counters["intervals"] = static_cast<double>(n);
  state.counters["matches_per_stab"] =
      static_cast<double>(matches) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_IntervalIndexStab)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

// Baseline: test every interval (what a main-memory list organization
// does for a range signature).
void BM_IntervalListScan(benchmark::State& state) {
  int64_t n = state.range(0);
  Random rng(3);
  std::vector<IntervalIndex::Interval> list;
  for (int64_t i = 0; i < n; ++i) {
    IntervalIndex::Interval iv;
    int64_t lo = rng.UniformRange(0, 1000000);
    iv.lo = Value::Int(lo);
    iv.hi = Value::Int(lo + 100);
    iv.id = static_cast<uint64_t>(i);
    list.push_back(iv);
  }
  Random probe_rng(7);
  for (auto _ : state) {
    Value v = Value::Int(probe_rng.UniformRange(0, 1000000));
    uint64_t count = 0;
    for (const auto& iv : list) {
      if (iv.Contains(v)) ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.counters["intervals"] = static_cast<double>(n);
}
BENCHMARK(BM_IntervalListScan)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

// Insert cost (amortized rebuilds).
void BM_IntervalIndexInsert(benchmark::State& state) {
  Random rng(3);
  IntervalIndex index;
  uint64_t id = 0;
  for (auto _ : state) {
    IntervalIndex::Interval iv;
    int64_t lo = rng.UniformRange(0, 1000000);
    iv.lo = Value::Int(lo);
    iv.hi = Value::Int(lo + 100);
    iv.id = id++;
    index.Insert(iv);
  }
  state.counters["final_size"] = static_cast<double>(index.size());
}
BENCHMARK(BM_IntervalIndexInsert)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tman::bench

BENCHMARK_MAIN();
