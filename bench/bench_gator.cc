// Ablation: Gator (materialized beta memories, [Hans97b]) vs A-TREAT
// (recompute joins from alpha memories) on a stream join workload — the
// discrimination-network upgrade §3 of the paper plans. Gator trades
// memory (beta rows) for per-token time; the crossover depends on join
// fan-in and prefix reuse.

#include "bench/bench_common.h"

#include "network/atreat.h"
#include "network/gator.h"

namespace tman::bench {
namespace {

struct JoinSetup {
  std::vector<TupleVarInfo> vars = {
      {"o", "orders", 11, OpCode::kInsertOrUpdate},
      {"s", "shipments", 12, OpCode::kInsertOrUpdate},
      {"i", "invoices", 13, OpCode::kInsertOrUpdate},
  };
  std::vector<Schema> schemas = {
      Schema({{"oid", DataType::kInt}, {"cust", DataType::kInt}}),
      Schema({{"oid", DataType::kInt}, {"status", DataType::kVarchar}}),
      Schema({{"oid", DataType::kInt}, {"total", DataType::kFloat}}),
  };

  ConditionGraph graph;

  JoinSetup() {
    auto cnf = ToCnf(MustParse("o.oid = s.oid and s.oid = i.oid"));
    auto g = ConditionGraph::Build(vars, *cnf);
    graph = *g;
  }

  Tuple Make(size_t var, int64_t oid, Random* rng) {
    switch (var) {
      case 0:
        return Tuple({Value::Int(oid),
                      Value::Int(rng->UniformRange(0, 100))});
      case 1:
        return Tuple({Value::Int(oid), Value::String("s")});
      default:
        return Tuple({Value::Int(oid),
                      Value::Float(static_cast<double>(rng->Uniform(100)))});
    }
  }
};

// `prefill` tuples per variable over `keys` join keys establish the
// steady-state memories; we then time token arrivals at the last
// variable (invoices), where Gator reuses the materialized o ⋈ s prefix.
void BM_GatorTokenArrival(benchmark::State& state) {
  JoinSetup setup;
  int64_t prefill = state.range(0);
  int64_t keys = prefill;  // ~1 tuple per key per variable
  auto net = GatorNetwork::Build(setup.graph, setup.schemas);
  Check(net.status(), "build");
  Random rng(5);
  auto ignore = [](const std::vector<Tuple>&) {};
  for (int64_t i = 0; i < prefill; ++i) {
    for (size_t v = 0; v < 2; ++v) {
      Check((*net)->AddTuple(static_cast<NetworkNodeId>(v),
                             setup.Make(v, i % keys, &rng), ignore),
            "prefill");
    }
  }
  int64_t oid = 0;
  for (auto _ : state) {
    Tuple t = setup.Make(2, oid % keys, &rng);
    Check((*net)->AddTuple(2, t, ignore), "add");
    Check((*net)->RemoveTuple(2, t), "remove");
    ++oid;
  }
  state.counters["prefill_per_var"] = static_cast<double>(prefill);
  state.counters["beta_rows"] = static_cast<double>((*net)->total_beta_rows());
}
BENCHMARK(BM_GatorTokenArrival)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_ATreatTokenArrival(benchmark::State& state) {
  JoinSetup setup;
  int64_t prefill = state.range(0);
  int64_t keys = prefill;
  ATreatOptions opts;
  opts.prefer_virtual = false;
  auto net = ATreatNetwork::Build(setup.graph, nullptr, opts, setup.schemas);
  Check(net.status(), "build");
  Random rng(5);
  for (int64_t i = 0; i < prefill; ++i) {
    for (size_t v = 0; v < 2; ++v) {
      Check((*net)->AddTuple(static_cast<NetworkNodeId>(v),
                             setup.Make(v, i % keys, &rng)),
            "prefill");
    }
  }
  auto ignore = [](const std::vector<Tuple>&) {};
  int64_t oid = 0;
  for (auto _ : state) {
    Tuple t = setup.Make(2, oid % keys, &rng);
    Check((*net)->AddTuple(2, t), "add");
    Check((*net)->MatchJoins(2, t, ignore), "match");
    Check((*net)->RemoveTuple(2, t), "remove");
    ++oid;
  }
  state.counters["prefill_per_var"] = static_cast<double>(prefill);
}
BENCHMARK(BM_ATreatTokenArrival)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tman::bench

BENCHMARK_MAIN();
