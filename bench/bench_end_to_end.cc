// Experiment F1 (Figure 1): end-to-end architecture throughput. Local
// table updates are captured by per-table hooks, staged through the
// persistent update queue, matched by the predicate index, joined in
// A-TREAT networks, and fire execSQL / raise-event actions — the complete
// data path of the architecture diagram.

#include "bench/bench_common.h"

#include "core/trigger_manager.h"

namespace tman::bench {
namespace {

struct EndToEnd {
  Database db;
  std::unique_ptr<TriggerManager> tman;

  explicit EndToEnd(bool persistent_queue) {
    Check(db.CreateTable("emp", Schema({{"name", DataType::kVarchar},
                                        {"salary", DataType::kFloat},
                                        {"dept", DataType::kInt}}))
              .status(),
          "create emp");
    Check(db.CreateTable("dept_stats", Schema({{"dept", DataType::kInt},
                                               {"hires", DataType::kInt}}))
              .status(),
          "create dept_stats");
    TriggerManagerOptions options;
    options.persistent_queue = persistent_queue;
    tman = std::make_unique<TriggerManager>(&db, options);
    Check(tman->Open(), "open");
    Check(tman->DefineLocalTableSource("emp").status(), "src");

    // A realistic mix: per-department alerting triggers (shared
    // signature, distinct constants), one threshold trigger, one audit
    // trigger with an execSQL action.
    for (int d = 0; d < 50; ++d) {
      Check(tman->ExecuteCommand(
                    "create trigger deptWatch" + std::to_string(d) +
                    " from emp on insert when emp.dept = " +
                    std::to_string(d) + " do raise event DeptHire(emp.name)")
                .status(),
            "create");
    }
    Check(tman->ExecuteCommand(
                  "create trigger bigSalary from emp on insert "
                  "when emp.salary > 150000 "
                  "do raise event BigHire(emp.name, emp.salary)")
              .status(),
          "create");
    Check(tman->ExecuteCommand(
                  "create trigger audit from emp on insert "
                  "when emp.dept = 7 "
                  "do execSQL 'insert into dept_stats values (7, 1)'")
              .status(),
          "create");
  }
};

void BM_EndToEndUpdateThroughput(benchmark::State& state) {
  EndToEnd fx(state.range(0) != 0);
  Random rng(5);
  int64_t i = 0;
  for (auto _ : state) {
    Check(fx.db
              .Insert("emp",
                      Tuple({Value::String("e" + std::to_string(i++)),
                             Value::Float(static_cast<double>(
                                 50000 + rng.Uniform(150000))),
                             Value::Int(static_cast<int64_t>(
                                 rng.Uniform(100)))}))
              .status(),
          "insert");
    Check(fx.tman->ProcessPending(), "process");
  }
  auto stats = fx.tman->stats();
  state.counters["persistent_queue"] = static_cast<double>(state.range(0));
  state.counters["firings"] = static_cast<double>(stats.rule_firings);
  state.counters["sql_actions"] =
      static_cast<double>(stats.actions.sql_statements);
}
BENCHMARK(BM_EndToEndUpdateThroughput)
    ->Arg(0)  // main-memory delivery
    ->Arg(1)  // persistent queue table
    ->Unit(benchmark::kMicrosecond);

// Asynchronous mode: drivers consume while the "application" updates.
void BM_EndToEndAsync(benchmark::State& state) {
  EndToEnd fx(/*persistent_queue=*/false);
  Check(fx.tman->Start(), "start");
  Random rng(5);
  int64_t i = 0;
  constexpr int kBatch = 200;
  for (auto _ : state) {
    for (int k = 0; k < kBatch; ++k) {
      Check(fx.db
                .Insert("emp",
                        Tuple({Value::String("e" + std::to_string(i++)),
                               Value::Float(60000),
                               Value::Int(static_cast<int64_t>(
                                   rng.Uniform(100)))}))
                .status(),
            "insert");
    }
    fx.tman->Drain();
  }
  fx.tman->Stop();
  state.counters["batch"] = kBatch;
}
BENCHMARK(BM_EndToEndAsync)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tman::bench

BENCHMARK_MAIN();
