file(REMOVE_RECURSE
  "libtman_types.a"
)
