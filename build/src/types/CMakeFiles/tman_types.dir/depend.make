# Empty dependencies file for tman_types.
# This may be replaced when dependencies are built.
