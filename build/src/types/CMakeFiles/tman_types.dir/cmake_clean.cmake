file(REMOVE_RECURSE
  "CMakeFiles/tman_types.dir/data_type.cc.o"
  "CMakeFiles/tman_types.dir/data_type.cc.o.d"
  "CMakeFiles/tman_types.dir/schema.cc.o"
  "CMakeFiles/tman_types.dir/schema.cc.o.d"
  "CMakeFiles/tman_types.dir/tuple.cc.o"
  "CMakeFiles/tman_types.dir/tuple.cc.o.d"
  "CMakeFiles/tman_types.dir/update_descriptor.cc.o"
  "CMakeFiles/tman_types.dir/update_descriptor.cc.o.d"
  "CMakeFiles/tman_types.dir/value.cc.o"
  "CMakeFiles/tman_types.dir/value.cc.o.d"
  "libtman_types.a"
  "libtman_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
