file(REMOVE_RECURSE
  "CMakeFiles/tman_core.dir/actions.cc.o"
  "CMakeFiles/tman_core.dir/actions.cc.o.d"
  "CMakeFiles/tman_core.dir/aggregates.cc.o"
  "CMakeFiles/tman_core.dir/aggregates.cc.o.d"
  "CMakeFiles/tman_core.dir/client.cc.o"
  "CMakeFiles/tman_core.dir/client.cc.o.d"
  "CMakeFiles/tman_core.dir/data_source.cc.o"
  "CMakeFiles/tman_core.dir/data_source.cc.o.d"
  "CMakeFiles/tman_core.dir/events.cc.o"
  "CMakeFiles/tman_core.dir/events.cc.o.d"
  "CMakeFiles/tman_core.dir/trigger_manager.cc.o"
  "CMakeFiles/tman_core.dir/trigger_manager.cc.o.d"
  "libtman_core.a"
  "libtman_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
