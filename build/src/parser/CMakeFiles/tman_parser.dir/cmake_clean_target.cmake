file(REMOVE_RECURSE
  "libtman_parser.a"
)
