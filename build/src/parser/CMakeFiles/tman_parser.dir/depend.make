# Empty dependencies file for tman_parser.
# This may be replaced when dependencies are built.
