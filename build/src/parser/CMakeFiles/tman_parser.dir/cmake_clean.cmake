file(REMOVE_RECURSE
  "CMakeFiles/tman_parser.dir/lexer.cc.o"
  "CMakeFiles/tman_parser.dir/lexer.cc.o.d"
  "CMakeFiles/tman_parser.dir/parser.cc.o"
  "CMakeFiles/tman_parser.dir/parser.cc.o.d"
  "libtman_parser.a"
  "libtman_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
