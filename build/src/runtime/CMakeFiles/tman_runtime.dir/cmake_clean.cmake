file(REMOVE_RECURSE
  "CMakeFiles/tman_runtime.dir/driver.cc.o"
  "CMakeFiles/tman_runtime.dir/driver.cc.o.d"
  "CMakeFiles/tman_runtime.dir/task_queue.cc.o"
  "CMakeFiles/tman_runtime.dir/task_queue.cc.o.d"
  "libtman_runtime.a"
  "libtman_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
