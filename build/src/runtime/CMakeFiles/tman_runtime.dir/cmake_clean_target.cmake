file(REMOVE_RECURSE
  "libtman_runtime.a"
)
