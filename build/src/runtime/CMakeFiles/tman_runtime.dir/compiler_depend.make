# Empty compiler generated dependencies file for tman_runtime.
# This may be replaced when dependencies are built.
