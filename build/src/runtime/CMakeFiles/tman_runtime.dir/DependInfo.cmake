
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/driver.cc" "src/runtime/CMakeFiles/tman_runtime.dir/driver.cc.o" "gcc" "src/runtime/CMakeFiles/tman_runtime.dir/driver.cc.o.d"
  "/root/repo/src/runtime/task_queue.cc" "src/runtime/CMakeFiles/tman_runtime.dir/task_queue.cc.o" "gcc" "src/runtime/CMakeFiles/tman_runtime.dir/task_queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tman_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
