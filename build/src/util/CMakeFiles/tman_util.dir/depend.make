# Empty dependencies file for tman_util.
# This may be replaced when dependencies are built.
