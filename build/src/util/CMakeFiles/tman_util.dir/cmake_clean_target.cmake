file(REMOVE_RECURSE
  "libtman_util.a"
)
