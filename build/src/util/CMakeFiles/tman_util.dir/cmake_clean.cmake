file(REMOVE_RECURSE
  "CMakeFiles/tman_util.dir/logging.cc.o"
  "CMakeFiles/tman_util.dir/logging.cc.o.d"
  "CMakeFiles/tman_util.dir/random.cc.o"
  "CMakeFiles/tman_util.dir/random.cc.o.d"
  "CMakeFiles/tman_util.dir/status.cc.o"
  "CMakeFiles/tman_util.dir/status.cc.o.d"
  "CMakeFiles/tman_util.dir/string_util.cc.o"
  "CMakeFiles/tman_util.dir/string_util.cc.o.d"
  "libtman_util.a"
  "libtman_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
