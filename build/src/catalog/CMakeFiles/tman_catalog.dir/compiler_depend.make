# Empty compiler generated dependencies file for tman_catalog.
# This may be replaced when dependencies are built.
