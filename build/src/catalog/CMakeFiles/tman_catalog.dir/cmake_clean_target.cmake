file(REMOVE_RECURSE
  "libtman_catalog.a"
)
