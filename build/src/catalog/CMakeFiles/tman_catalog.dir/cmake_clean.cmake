file(REMOVE_RECURSE
  "CMakeFiles/tman_catalog.dir/trigger_catalog.cc.o"
  "CMakeFiles/tman_catalog.dir/trigger_catalog.cc.o.d"
  "libtman_catalog.a"
  "libtman_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
