
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/trigger_catalog.cc" "src/catalog/CMakeFiles/tman_catalog.dir/trigger_catalog.cc.o" "gcc" "src/catalog/CMakeFiles/tman_catalog.dir/trigger_catalog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/tman_db.dir/DependInfo.cmake"
  "/root/repo/build/src/predindex/CMakeFiles/tman_predindex.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/tman_types.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tman_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tman_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/tman_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/tman_expr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
