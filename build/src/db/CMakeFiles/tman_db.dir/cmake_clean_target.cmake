file(REMOVE_RECURSE
  "libtman_db.a"
)
