# Empty compiler generated dependencies file for tman_db.
# This may be replaced when dependencies are built.
