file(REMOVE_RECURSE
  "CMakeFiles/tman_db.dir/database.cc.o"
  "CMakeFiles/tman_db.dir/database.cc.o.d"
  "CMakeFiles/tman_db.dir/sql.cc.o"
  "CMakeFiles/tman_db.dir/sql.cc.o.d"
  "libtman_db.a"
  "libtman_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
