# Empty compiler generated dependencies file for tman_network.
# This may be replaced when dependencies are built.
