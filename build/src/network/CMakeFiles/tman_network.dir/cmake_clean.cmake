file(REMOVE_RECURSE
  "CMakeFiles/tman_network.dir/alpha_memory.cc.o"
  "CMakeFiles/tman_network.dir/alpha_memory.cc.o.d"
  "CMakeFiles/tman_network.dir/atreat.cc.o"
  "CMakeFiles/tman_network.dir/atreat.cc.o.d"
  "CMakeFiles/tman_network.dir/gator.cc.o"
  "CMakeFiles/tman_network.dir/gator.cc.o.d"
  "libtman_network.a"
  "libtman_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
