file(REMOVE_RECURSE
  "libtman_network.a"
)
