file(REMOVE_RECURSE
  "libtman_cache.a"
)
