file(REMOVE_RECURSE
  "CMakeFiles/tman_cache.dir/trigger_cache.cc.o"
  "CMakeFiles/tman_cache.dir/trigger_cache.cc.o.d"
  "libtman_cache.a"
  "libtman_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
