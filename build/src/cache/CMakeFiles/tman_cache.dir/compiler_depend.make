# Empty compiler generated dependencies file for tman_cache.
# This may be replaced when dependencies are built.
