file(REMOVE_RECURSE
  "CMakeFiles/tman_predindex.dir/cost_model.cc.o"
  "CMakeFiles/tman_predindex.dir/cost_model.cc.o.d"
  "CMakeFiles/tman_predindex.dir/interval_index.cc.o"
  "CMakeFiles/tman_predindex.dir/interval_index.cc.o.d"
  "CMakeFiles/tman_predindex.dir/org_common.cc.o"
  "CMakeFiles/tman_predindex.dir/org_common.cc.o.d"
  "CMakeFiles/tman_predindex.dir/org_db.cc.o"
  "CMakeFiles/tman_predindex.dir/org_db.cc.o.d"
  "CMakeFiles/tman_predindex.dir/org_memory.cc.o"
  "CMakeFiles/tman_predindex.dir/org_memory.cc.o.d"
  "CMakeFiles/tman_predindex.dir/organization.cc.o"
  "CMakeFiles/tman_predindex.dir/organization.cc.o.d"
  "CMakeFiles/tman_predindex.dir/predicate_index.cc.o"
  "CMakeFiles/tman_predindex.dir/predicate_index.cc.o.d"
  "CMakeFiles/tman_predindex.dir/signature_index.cc.o"
  "CMakeFiles/tman_predindex.dir/signature_index.cc.o.d"
  "libtman_predindex.a"
  "libtman_predindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_predindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
