file(REMOVE_RECURSE
  "libtman_predindex.a"
)
