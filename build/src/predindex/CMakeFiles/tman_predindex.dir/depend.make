# Empty dependencies file for tman_predindex.
# This may be replaced when dependencies are built.
