
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predindex/cost_model.cc" "src/predindex/CMakeFiles/tman_predindex.dir/cost_model.cc.o" "gcc" "src/predindex/CMakeFiles/tman_predindex.dir/cost_model.cc.o.d"
  "/root/repo/src/predindex/interval_index.cc" "src/predindex/CMakeFiles/tman_predindex.dir/interval_index.cc.o" "gcc" "src/predindex/CMakeFiles/tman_predindex.dir/interval_index.cc.o.d"
  "/root/repo/src/predindex/org_common.cc" "src/predindex/CMakeFiles/tman_predindex.dir/org_common.cc.o" "gcc" "src/predindex/CMakeFiles/tman_predindex.dir/org_common.cc.o.d"
  "/root/repo/src/predindex/org_db.cc" "src/predindex/CMakeFiles/tman_predindex.dir/org_db.cc.o" "gcc" "src/predindex/CMakeFiles/tman_predindex.dir/org_db.cc.o.d"
  "/root/repo/src/predindex/org_memory.cc" "src/predindex/CMakeFiles/tman_predindex.dir/org_memory.cc.o" "gcc" "src/predindex/CMakeFiles/tman_predindex.dir/org_memory.cc.o.d"
  "/root/repo/src/predindex/organization.cc" "src/predindex/CMakeFiles/tman_predindex.dir/organization.cc.o" "gcc" "src/predindex/CMakeFiles/tman_predindex.dir/organization.cc.o.d"
  "/root/repo/src/predindex/predicate_index.cc" "src/predindex/CMakeFiles/tman_predindex.dir/predicate_index.cc.o" "gcc" "src/predindex/CMakeFiles/tman_predindex.dir/predicate_index.cc.o.d"
  "/root/repo/src/predindex/signature_index.cc" "src/predindex/CMakeFiles/tman_predindex.dir/signature_index.cc.o" "gcc" "src/predindex/CMakeFiles/tman_predindex.dir/signature_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/tman_db.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/tman_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/tman_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/tman_types.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tman_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tman_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
