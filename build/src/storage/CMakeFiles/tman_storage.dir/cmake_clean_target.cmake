file(REMOVE_RECURSE
  "libtman_storage.a"
)
