# Empty dependencies file for tman_storage.
# This may be replaced when dependencies are built.
