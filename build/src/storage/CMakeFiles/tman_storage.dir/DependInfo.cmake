
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bptree.cc" "src/storage/CMakeFiles/tman_storage.dir/bptree.cc.o" "gcc" "src/storage/CMakeFiles/tman_storage.dir/bptree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/tman_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/tman_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/storage/CMakeFiles/tman_storage.dir/disk_manager.cc.o" "gcc" "src/storage/CMakeFiles/tman_storage.dir/disk_manager.cc.o.d"
  "/root/repo/src/storage/heap_table.cc" "src/storage/CMakeFiles/tman_storage.dir/heap_table.cc.o" "gcc" "src/storage/CMakeFiles/tman_storage.dir/heap_table.cc.o.d"
  "/root/repo/src/storage/table_queue.cc" "src/storage/CMakeFiles/tman_storage.dir/table_queue.cc.o" "gcc" "src/storage/CMakeFiles/tman_storage.dir/table_queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/types/CMakeFiles/tman_types.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tman_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
