file(REMOVE_RECURSE
  "CMakeFiles/tman_storage.dir/bptree.cc.o"
  "CMakeFiles/tman_storage.dir/bptree.cc.o.d"
  "CMakeFiles/tman_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/tman_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/tman_storage.dir/disk_manager.cc.o"
  "CMakeFiles/tman_storage.dir/disk_manager.cc.o.d"
  "CMakeFiles/tman_storage.dir/heap_table.cc.o"
  "CMakeFiles/tman_storage.dir/heap_table.cc.o.d"
  "CMakeFiles/tman_storage.dir/table_queue.cc.o"
  "CMakeFiles/tman_storage.dir/table_queue.cc.o.d"
  "libtman_storage.a"
  "libtman_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
