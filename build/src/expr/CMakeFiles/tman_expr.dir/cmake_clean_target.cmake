file(REMOVE_RECURSE
  "libtman_expr.a"
)
