
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/cnf.cc" "src/expr/CMakeFiles/tman_expr.dir/cnf.cc.o" "gcc" "src/expr/CMakeFiles/tman_expr.dir/cnf.cc.o.d"
  "/root/repo/src/expr/condition_graph.cc" "src/expr/CMakeFiles/tman_expr.dir/condition_graph.cc.o" "gcc" "src/expr/CMakeFiles/tman_expr.dir/condition_graph.cc.o.d"
  "/root/repo/src/expr/eval.cc" "src/expr/CMakeFiles/tman_expr.dir/eval.cc.o" "gcc" "src/expr/CMakeFiles/tman_expr.dir/eval.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/expr/CMakeFiles/tman_expr.dir/expr.cc.o" "gcc" "src/expr/CMakeFiles/tman_expr.dir/expr.cc.o.d"
  "/root/repo/src/expr/rewrite.cc" "src/expr/CMakeFiles/tman_expr.dir/rewrite.cc.o" "gcc" "src/expr/CMakeFiles/tman_expr.dir/rewrite.cc.o.d"
  "/root/repo/src/expr/signature.cc" "src/expr/CMakeFiles/tman_expr.dir/signature.cc.o" "gcc" "src/expr/CMakeFiles/tman_expr.dir/signature.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/types/CMakeFiles/tman_types.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tman_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
