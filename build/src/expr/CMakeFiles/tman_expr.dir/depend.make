# Empty dependencies file for tman_expr.
# This may be replaced when dependencies are built.
