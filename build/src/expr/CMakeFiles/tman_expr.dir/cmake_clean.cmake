file(REMOVE_RECURSE
  "CMakeFiles/tman_expr.dir/cnf.cc.o"
  "CMakeFiles/tman_expr.dir/cnf.cc.o.d"
  "CMakeFiles/tman_expr.dir/condition_graph.cc.o"
  "CMakeFiles/tman_expr.dir/condition_graph.cc.o.d"
  "CMakeFiles/tman_expr.dir/eval.cc.o"
  "CMakeFiles/tman_expr.dir/eval.cc.o.d"
  "CMakeFiles/tman_expr.dir/expr.cc.o"
  "CMakeFiles/tman_expr.dir/expr.cc.o.d"
  "CMakeFiles/tman_expr.dir/rewrite.cc.o"
  "CMakeFiles/tman_expr.dir/rewrite.cc.o.d"
  "CMakeFiles/tman_expr.dir/signature.cc.o"
  "CMakeFiles/tman_expr.dir/signature.cc.o.d"
  "libtman_expr.a"
  "libtman_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
