file(REMOVE_RECURSE
  "CMakeFiles/fraud_monitor.dir/fraud_monitor.cpp.o"
  "CMakeFiles/fraud_monitor.dir/fraud_monitor.cpp.o.d"
  "fraud_monitor"
  "fraud_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fraud_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
