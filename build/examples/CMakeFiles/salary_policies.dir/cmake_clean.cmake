file(REMOVE_RECURSE
  "CMakeFiles/salary_policies.dir/salary_policies.cpp.o"
  "CMakeFiles/salary_policies.dir/salary_policies.cpp.o.d"
  "salary_policies"
  "salary_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salary_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
