file(REMOVE_RECURSE
  "CMakeFiles/realestate_alerts.dir/realestate_alerts.cpp.o"
  "CMakeFiles/realestate_alerts.dir/realestate_alerts.cpp.o.d"
  "realestate_alerts"
  "realestate_alerts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realestate_alerts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
