# Empty compiler generated dependencies file for realestate_alerts.
# This may be replaced when dependencies are built.
