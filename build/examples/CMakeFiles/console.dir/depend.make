# Empty dependencies file for console.
# This may be replaced when dependencies are built.
