file(REMOVE_RECURSE
  "CMakeFiles/console.dir/console.cpp.o"
  "CMakeFiles/console.dir/console.cpp.o.d"
  "console"
  "console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
