file(REMOVE_RECURSE
  "CMakeFiles/table_queue_test.dir/table_queue_test.cc.o"
  "CMakeFiles/table_queue_test.dir/table_queue_test.cc.o.d"
  "table_queue_test"
  "table_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
