# Empty dependencies file for predindex_test.
# This may be replaced when dependencies are built.
