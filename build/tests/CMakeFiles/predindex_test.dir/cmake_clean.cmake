file(REMOVE_RECURSE
  "CMakeFiles/predindex_test.dir/predindex_test.cc.o"
  "CMakeFiles/predindex_test.dir/predindex_test.cc.o.d"
  "predindex_test"
  "predindex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predindex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
