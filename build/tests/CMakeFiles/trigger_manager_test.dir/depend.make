# Empty dependencies file for trigger_manager_test.
# This may be replaced when dependencies are built.
