file(REMOVE_RECURSE
  "CMakeFiles/trigger_manager_test.dir/trigger_manager_test.cc.o"
  "CMakeFiles/trigger_manager_test.dir/trigger_manager_test.cc.o.d"
  "trigger_manager_test"
  "trigger_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trigger_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
