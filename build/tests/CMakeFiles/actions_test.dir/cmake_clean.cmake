file(REMOVE_RECURSE
  "CMakeFiles/actions_test.dir/actions_test.cc.o"
  "CMakeFiles/actions_test.dir/actions_test.cc.o.d"
  "actions_test"
  "actions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
