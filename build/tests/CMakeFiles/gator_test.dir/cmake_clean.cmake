file(REMOVE_RECURSE
  "CMakeFiles/gator_test.dir/gator_test.cc.o"
  "CMakeFiles/gator_test.dir/gator_test.cc.o.d"
  "gator_test"
  "gator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
