# Empty compiler generated dependencies file for gator_test.
# This may be replaced when dependencies are built.
