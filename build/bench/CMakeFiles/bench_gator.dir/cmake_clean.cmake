file(REMOVE_RECURSE
  "CMakeFiles/bench_gator.dir/bench_gator.cc.o"
  "CMakeFiles/bench_gator.dir/bench_gator.cc.o.d"
  "bench_gator"
  "bench_gator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
