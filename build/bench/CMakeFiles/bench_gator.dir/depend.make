# Empty dependencies file for bench_gator.
# This may be replaced when dependencies are built.
