file(REMOVE_RECURSE
  "CMakeFiles/bench_join_triggers.dir/bench_join_triggers.cc.o"
  "CMakeFiles/bench_join_triggers.dir/bench_join_triggers.cc.o.d"
  "bench_join_triggers"
  "bench_join_triggers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_triggers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
