# Empty dependencies file for bench_join_triggers.
# This may be replaced when dependencies are built.
