file(REMOVE_RECURSE
  "CMakeFiles/bench_trigger_cache.dir/bench_trigger_cache.cc.o"
  "CMakeFiles/bench_trigger_cache.dir/bench_trigger_cache.cc.o.d"
  "bench_trigger_cache"
  "bench_trigger_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trigger_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
