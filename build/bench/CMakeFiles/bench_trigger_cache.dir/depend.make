# Empty dependencies file for bench_trigger_cache.
# This may be replaced when dependencies are built.
