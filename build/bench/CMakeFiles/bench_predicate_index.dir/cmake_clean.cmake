file(REMOVE_RECURSE
  "CMakeFiles/bench_predicate_index.dir/bench_predicate_index.cc.o"
  "CMakeFiles/bench_predicate_index.dir/bench_predicate_index.cc.o.d"
  "bench_predicate_index"
  "bench_predicate_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_predicate_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
