file(REMOVE_RECURSE
  "CMakeFiles/bench_create_trigger.dir/bench_create_trigger.cc.o"
  "CMakeFiles/bench_create_trigger.dir/bench_create_trigger.cc.o.d"
  "bench_create_trigger"
  "bench_create_trigger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_create_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
