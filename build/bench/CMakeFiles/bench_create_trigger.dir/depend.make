# Empty dependencies file for bench_create_trigger.
# This may be replaced when dependencies are built.
