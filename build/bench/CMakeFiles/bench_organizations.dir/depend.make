# Empty dependencies file for bench_organizations.
# This may be replaced when dependencies are built.
