
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_organizations.cc" "bench/CMakeFiles/bench_organizations.dir/bench_organizations.cc.o" "gcc" "bench/CMakeFiles/bench_organizations.dir/bench_organizations.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tman_core.dir/DependInfo.cmake"
  "/root/repo/build/src/predindex/CMakeFiles/tman_predindex.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/tman_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/tman_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/tman_network.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tman_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/tman_db.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/tman_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/tman_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tman_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/tman_types.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tman_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
