file(REMOVE_RECURSE
  "CMakeFiles/bench_interval_index.dir/bench_interval_index.cc.o"
  "CMakeFiles/bench_interval_index.dir/bench_interval_index.cc.o.d"
  "bench_interval_index"
  "bench_interval_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interval_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
