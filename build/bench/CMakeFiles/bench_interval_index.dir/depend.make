# Empty dependencies file for bench_interval_index.
# This may be replaced when dependencies are built.
