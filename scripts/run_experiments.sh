#!/usr/bin/env bash
# Builds the project, runs the full test suite, and regenerates every
# experiment in EXPERIMENTS.md, leaving raw logs in test_output.txt and
# bench_output.txt at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/bench_*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "===== $(basename "$b") ====="
    "$b"
  done
} 2>&1 | tee bench_output.txt

echo "Done. See test_output.txt and bench_output.txt."
