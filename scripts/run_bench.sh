#!/usr/bin/env bash
# Runs the scaling and evaluation benchmark suites and writes
# machine-readable results to BENCH_scaling.json and BENCH_eval.json at
# the repository root (google-benchmark JSON, one entry per
# benchmark/arg/thread-count combination).
#
# Usage:
#   scripts/run_bench.sh            # bench_scaling -> BENCH_scaling.json
#                                   # bench_eval    -> BENCH_eval.json
#   scripts/run_bench.sh --smoke    # fast verified rounds, no JSON (CI)
#   scripts/run_bench.sh --all      # also re-run every other bench_* binary
#
# The driver-scaling numbers (BM_DriverScalingTokens) model blocking
# downstream delivery per fired event, so they demonstrate driver-count
# scaling even on a single-CPU host; the ->Threads(N) microbenchmarks
# additionally need real cores to show contention relief.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-}"

if ! [ -x build/bench/bench_scaling ] || ! [ -x build/bench/bench_eval ] ||
   ! [ -x build/bench/bench_cluster ] || ! [ -x build/bench/bench_adapt ]; then
  cmake -B build -S . >/dev/null
  cmake --build build -j --target bench_scaling --target bench_eval \
    --target bench_cluster --target bench_adapt
fi

if [ "$MODE" = "--smoke" ]; then
  ./build/bench/bench_eval --smoke
  ./build/bench/bench_cluster --smoke
  ./build/bench/bench_adapt --smoke
  exec ./build/bench/bench_scaling --smoke
fi

./build/bench/bench_scaling \
  --benchmark_format=json \
  --benchmark_out=BENCH_scaling.json \
  --benchmark_out_format=json

echo "Wrote BENCH_scaling.json"

./build/bench/bench_eval \
  --benchmark_format=json \
  --benchmark_out=BENCH_eval.json \
  --benchmark_out_format=json

echo "Wrote BENCH_eval.json"

# The batched lanes in isolation: columnar batch widths 8/64/256 through
# the compiled evaluator (bench_eval) and the token pipeline / task queue
# (bench_scaling). Kept as a separate artifact so the scalar-vs-batched
# comparison survives reruns of the main suites.
./build/bench/bench_eval \
  --benchmark_filter='Batched' \
  --benchmark_format=json \
  --benchmark_out=BENCH_batch.json \
  --benchmark_out_format=json

echo "Wrote BENCH_batch.json"

./build/bench/bench_cluster \
  --benchmark_format=json \
  --benchmark_out=BENCH_cluster.json \
  --benchmark_out_format=json

echo "Wrote BENCH_cluster.json"

./build/bench/bench_adapt \
  --benchmark_format=json \
  --benchmark_out=BENCH_adapt.json \
  --benchmark_out_format=json

echo "Wrote BENCH_adapt.json"

if [ "$MODE" = "--all" ]; then
  cmake --build build -j >/dev/null
  for b in build/bench/bench_*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name="$(basename "$b")"
    [ "$name" = "bench_scaling" ] && continue
    [ "$name" = "bench_eval" ] && continue
    [ "$name" = "bench_cluster" ] && continue
    [ "$name" = "bench_adapt" ] && continue
    echo "===== $name ====="
    "$b"
  done
fi
