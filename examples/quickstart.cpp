// Quickstart: the smallest complete TriggerMan program.
//
// Creates a table in the embedded database, registers it as a data
// source, defines a trigger with the paper's command language, performs
// updates, and watches the trigger fire.

#include <cstdio>

#include "core/trigger_manager.h"

using tman::Database;
using tman::DataType;
using tman::Event;
using tman::Schema;
using tman::Tuple;
using tman::TriggerManager;
using tman::Value;

int main() {
  // 1. An embedded database plays the role of the host DBMS (Informix in
  // the paper).
  Database db;
  auto table = db.CreateTable(
      "emp", Schema({{"name", DataType::kVarchar},
                     {"salary", DataType::kFloat},
                     {"dept", DataType::kInt}}));
  if (!table.ok()) {
    std::fprintf(stderr, "create table: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }

  // 2. TriggerMan attaches to the database.
  TriggerManager tman(&db);
  if (auto s = tman.Open(); !s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }
  // Registering the table installs the update-capture hook (the paper's
  // automatically-created Informix trigger).
  if (auto s = tman.DefineLocalTableSource("emp"); !s.ok()) {
    std::fprintf(stderr, "define source: %s\n",
                 s.status().ToString().c_str());
    return 1;
  }

  // 3. Subscribe to events raised by trigger actions.
  tman.events().Register("BigHire", [](const Event& e) {
    std::printf("  >> event %s\n", e.ToString().c_str());
  });

  // 4. Create a trigger with the TriggerMan command language.
  auto created = tman.ExecuteCommand(
      "create trigger bigHire from emp on insert "
      "when emp.salary > 80000 "
      "do raise event BigHire(emp.name, emp.salary)");
  if (!created.ok()) {
    std::fprintf(stderr, "create trigger: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", created->c_str());

  // 5. Update the table; captured updates become tokens.
  std::printf("inserting Bob (90k), Carl (20k), Dana (120k)\n");
  (void)db.Insert("emp", Tuple({Value::String("Bob"), Value::Float(90000),
                                Value::Int(1)}));
  (void)db.Insert("emp", Tuple({Value::String("Carl"), Value::Float(20000),
                                Value::Int(1)}));
  (void)db.Insert("emp", Tuple({Value::String("Dana"), Value::Float(120000),
                                Value::Int(2)}));

  // 6. Process staged updates (or call tman.Start() for driver threads).
  (void)tman.ProcessPending();

  auto stats = tman.stats();
  std::printf(
      "updates=%llu tokens=%llu firings=%llu events=%llu signatures=%llu\n",
      static_cast<unsigned long long>(stats.updates_submitted),
      static_cast<unsigned long long>(stats.tokens_processed),
      static_cast<unsigned long long>(stats.rule_firings),
      static_cast<unsigned long long>(stats.actions.events_raised),
      static_cast<unsigned long long>(stats.predicates.num_signatures));
  return 0;
}
