// Aggregate triggers (the paper's §9 future-work feature, implemented
// here): card-fraud style monitoring with group-by/having conditions —
// fire when a card's transaction count or total spend crosses a
// threshold, computed incrementally as transactions stream in.

#include <cstdio>

#include "core/trigger_manager.h"
#include "util/random.h"

using namespace tman;

namespace {

Status Run() {
  Database db;
  TMAN_RETURN_IF_ERROR(
      db.CreateTable("txn", Schema({{"card", DataType::kInt},
                                    {"amount", DataType::kFloat},
                                    {"merchant", DataType::kVarchar}}))
          .status());

  TriggerManager tman(&db);
  TMAN_RETURN_IF_ERROR(tman.Open());
  TMAN_RETURN_IF_ERROR(tman.DefineLocalTableSource("txn").status());

  // Velocity rule: a card with 10+ transactions trips an alert (once,
  // edge-triggered; deleting transactions re-arms it).
  TMAN_RETURN_IF_ERROR(
      tman.ExecuteCommand(
              "create trigger velocity from txn t "
              "group by t.card having count(t.card) >= 10 "
              "do raise event VelocityAlert(t.card, count(t.card))")
          .status());

  // Spend rule: total spend at risky merchants crossing 5,000.
  TMAN_RETURN_IF_ERROR(
      tman.ExecuteCommand(
              "create trigger bigSpend from txn t "
              "when t.merchant = 'casino' "
              "group by t.card having sum(t.amount) > 5000 "
              "do raise event SpendAlert(t.card, sum(t.amount))")
          .status());

  int alerts = 0;
  tman.events().Register("*", [&alerts](const Event& e) {
    std::printf("  >> %s\n", e.ToString().c_str());
    ++alerts;
  });

  // Stream transactions: card 13 is hot (many small txns), card 77
  // gambles heavily, everyone else is background noise.
  Random rng(99);
  const char* merchants[] = {"grocer", "casino", "fuel", "cafe"};
  constexpr int kTxns = 400;
  for (int i = 0; i < kTxns; ++i) {
    int64_t card;
    const char* merchant;
    double amount;
    if (i % 8 == 0) {
      card = 13;  // velocity offender
      merchant = merchants[i % 4];
      amount = 12;
    } else if (i % 11 == 0) {
      card = 77;  // casino spender
      merchant = "casino";
      amount = 400;
    } else {
      card = static_cast<int64_t>(100 + rng.Uniform(50));
      merchant = merchants[rng.Uniform(4)];
      amount = static_cast<double>(5 + rng.Uniform(120));
    }
    TMAN_RETURN_IF_ERROR(
        db.Insert("txn", Tuple({Value::Int(card), Value::Float(amount),
                                Value::String(merchant)}))
            .status());
  }
  TMAN_RETURN_IF_ERROR(tman.ProcessPending());

  auto stats = tman.stats();
  std::printf("\n%d transactions, %d alerts, %llu rule firings\n", kTxns,
              alerts,
              static_cast<unsigned long long>(stats.rule_firings));
  return Status::OK();
}

}  // namespace

int main() {
  Status s = Run();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
