// Multi-process TriggerMan cluster over real sockets: the same router +
// member-node protocol the deterministic cluster tests prove in-process,
// deployed as separate OS processes.
//
// Start three member nodes and a router front end:
//
//   cluster_main node --name n0 --port 7448 &
//   cluster_main node --name n1 --port 7449 &
//   cluster_main node --name n2 --port 7450 &
//   cluster_main router --port 7447 \
//       --node n0=127.0.0.1:7448 --node n1=127.0.0.1:7449 \
//       --node n2=127.0.0.1:7450
//
// Then point any wire-protocol client at the ROUTER as if it were a
// single TriggerMan server:
//
//   console --connect 127.0.0.1:7447
//   tman> cluster                  # ring ownership + per-node health
//   tman> create trigger watch from feed when feed.id >= 0 \
//             do raise event Seen(feed.id)   # broadcast to every member
//
// Update batches submitted to the router spread across the members by
// consistent hash (hot source "feed" additionally spreads by its id
// column). Kill a node process mid-stream: the router detects the death
// by heartbeat misses, reassigns its partitions, and replays unacked
// batches to the new owners; restart the process and it rejoins, reclaims
// partitions, and the shipped fences keep WAL-replayed tokens
// exactly-once. Every member must be started with the same --partitions /
// --vnodes (the partition function is cluster-wide configuration).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "cluster/router.h"
#include "core/trigger_manager.h"
#include "db/database.h"
#include "ipc/server.h"
#include "ipc/socket_transport.h"

using namespace tman;

namespace {

struct Peer {
  std::string name;
  std::string host;
  uint16_t port = 0;
};

bool ParsePeer(const std::string& arg, Peer* out) {
  size_t eq = arg.find('=');
  size_t colon = arg.rfind(':');
  if (eq == std::string::npos || colon == std::string::npos || colon < eq) {
    return false;
  }
  out->name = arg.substr(0, eq);
  out->host = arg.substr(eq + 1, colon - eq - 1);
  out->port = static_cast<uint16_t>(std::atoi(arg.c_str() + colon + 1));
  return !out->name.empty() && !out->host.empty() && out->port != 0;
}

ClusterConfig MakeConfig(uint32_t partitions, uint32_t vnodes,
                         DataSourceId feed) {
  ClusterConfig config;
  config.num_partitions = partitions;
  config.virtual_nodes = vnodes;
  config.ec_key_columns[feed] = 0;  // spread "feed" by its id column
  return config;
}

/// Wall-clock milliseconds for the node-side router-liveness lease.
uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int RunNode(const std::string& name, uint16_t port, uint32_t partitions,
            uint32_t vnodes, uint32_t drivers) {
  Database db;
  TriggerManagerOptions tmo;
  tmo.durable_wal = true;
  tmo.persistent_queue = true;
  tmo.driver_config.num_cpus = drivers;
  TriggerManager tman(&db, tmo);
  if (auto s = tman.Open(); !s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }
  // The demo schema every member shares (catalogs are per-member; a
  // broadcast `create trigger` through the router reaches all of them).
  auto feed = tman.DefineStreamSource("feed", Schema({{"id", DataType::kInt}}));
  if (!feed.ok()) {
    std::fprintf(stderr, "define feed: %s\n",
                 feed.status().ToString().c_str());
    return 1;
  }

  // The node layer must exist before the drivers start: a rebooted member
  // recovers WAL tokens under a processing hold (Open() paused the task
  // queue) and only a partition-map install — handled by this ClusterNode
  // — may release it. Starting drivers first would be safe (they idle on
  // the paused queue) but keeping construction ahead of Start() makes the
  // ordering explicit.
  ClusterNodeOptions node_opts;
  node_opts.name = name;
  node_opts.config = MakeConfig(partitions, vnodes, *feed);
  // Self-hold when the router goes mute for a whole verdict window
  // (default membership: 100ms heartbeats, 3 misses).
  node_opts.router_lease_ms =
      MembershipOptions().heartbeat_interval_ms * MembershipOptions().miss_threshold;
  ClusterNode node(&tman, node_opts);
  node.NoteRouterTraffic(NowMs());  // lease epoch starts at boot

  if (auto s = tman.Start(); !s.ok()) {
    std::fprintf(stderr, "start drivers: %s\n", s.ToString().c_str());
    return 1;
  }

  auto listener = TcpListener::Bind("0.0.0.0", port);
  if (!listener.ok()) {
    std::fprintf(stderr, "bind: %s\n", listener.status().ToString().c_str());
    return 1;
  }
  uint16_t bound = (*listener)->port();

  // Hook mode: the stock TmanServer owns the sockets; partition-ownership
  // checks, map installs, router-channel loss and the liveness lease all
  // route through the ClusterNode.
  TmanServerOptions server_opts;
  server_opts.cluster_admit = [&node](const UpdateDescriptor& token) {
    return node.AdmitToken(token);
  };
  server_opts.cluster_map = [&node](const PartitionMapFrame& frame) {
    return node.HandlePartitionMap(frame);
  };
  server_opts.cluster_router_lost = [&node] { node.OnRouterChannelLost(); };
  server_opts.cluster_activity = [&node] { node.NoteRouterTraffic(NowMs()); };
  server_opts.cluster_tick = [&node] { node.TickRouterLease(NowMs()); };
  TmanServer server(&tman, std::move(*listener), server_opts);
  if (auto s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("cluster node %s listening on port %u (%u partitions, %u "
              "vnodes). 'quit' to stop.\n",
              name.c_str(), bound, partitions, vnodes);
  std::fflush(stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (line == "stats") {
      ClusterNodeStats st = node.stats();
      std::printf("  epoch=%llu accepted=%llu rejected=%llu applied=%llu "
                  "deduped=%llu fenced=%llu maps=%llu held=%d\n",
                  static_cast<unsigned long long>(node.epoch()),
                  static_cast<unsigned long long>(st.batches_accepted),
                  static_cast<unsigned long long>(st.batches_rejected),
                  static_cast<unsigned long long>(st.tokens_applied),
                  static_cast<unsigned long long>(st.tokens_deduped),
                  static_cast<unsigned long long>(st.tokens_fenced),
                  static_cast<unsigned long long>(st.maps_installed),
                  node.processing_held() ? 1 : 0);
      std::fflush(stdout);
    }
  }

  server.Stop(std::chrono::milliseconds(2000));  // drain, then final commit
  tman.Stop();
  return 0;
}

/// Best-effort file persistence for the router's durable state (epoch +
/// rejoin fences). Losing this file does not wedge the cluster — nodes
/// report their durable epoch on refused maps and the router adopts it —
/// but lost fences cost exactly-once for tokens re-routed at the moment
/// of a node death, so the demo keeps them on disk.
bool LoadRouterState(const std::string& path, RouterDurableState* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string blob;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) blob.append(buf, n);
  std::fclose(f);
  auto state = RouterDurableState::Decode(blob);
  if (!state.ok()) {
    std::fprintf(stderr, "router state %s corrupt (%s); starting fresh\n",
                 path.c_str(), state.status().ToString().c_str());
    return false;
  }
  *out = std::move(*state);
  return true;
}

void SaveRouterState(const std::string& path, const RouterDurableState& state) {
  std::string blob;
  state.Encode(&blob);
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "router state: cannot write %s\n", tmp.c_str());
    return;
  }
  size_t written = std::fwrite(blob.data(), 1, blob.size(), f);
  std::fflush(f);
  std::fclose(f);
  if (written != blob.size() ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {  // atomic swap
    std::fprintf(stderr, "router state: persist to %s failed\n", path.c_str());
  }
}

int RunRouter(uint16_t port, const std::vector<Peer>& peers,
              uint32_t partitions, uint32_t vnodes,
              const std::string& state_path) {
  ClusterRouterOptions opts;
  // Data source ids are assigned per member in definition order; the demo
  // defines "feed" first everywhere, so its id is stable across members.
  opts.config = MakeConfig(partitions, vnodes, /*feed=*/1);
  if (LoadRouterState(state_path, &opts.initial_state)) {
    std::printf("router state: resuming at epoch %llu with %zu fences\n",
                static_cast<unsigned long long>(opts.initial_state.epoch),
                opts.initial_state.fences.size());
  }
  opts.persist_state = [state_path](const RouterDurableState& state) {
    SaveRouterState(state_path, state);
  };
  ClusterRouter router(opts);
  for (const Peer& peer : peers) {
    router.AddNode(peer.name,
                   [peer]() -> Result<std::unique_ptr<PollableTransport>> {
                     return TcpConnectPollable(peer.host, peer.port);
                   });
  }

  auto listener = TcpListener::Bind("0.0.0.0", port);
  if (!listener.ok()) {
    std::fprintf(stderr, "bind: %s\n", listener.status().ToString().c_str());
    return 1;
  }
  uint16_t bound = (*listener)->port();
  Listener* raw_listener = listener->get();
  router.StartServing(
      [raw_listener]() -> Result<std::unique_ptr<PollableTransport>> {
        auto accepted = raw_listener->Accept();
        if (!accepted.ok()) return accepted.status();
        auto pollable = AsPollable(std::move(*accepted));
        if (pollable == nullptr) {
          return Status::Internal("accepted transport is not pollable");
        }
        return pollable;
      });

  std::printf("cluster router listening on port %u, %zu members. "
              "'stats' / 'quit'.\n",
              bound, peers.size());
  std::fflush(stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (line == "stats" || line == "cluster") {
      std::printf("%s\n", router.StatsString().c_str());
      std::fflush(stdout);
    }
  }

  (*listener)->Close();  // unblocks the accept loop
  router.StopServing();
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s node   --name NAME --port N [--partitions N] [--vnodes N]\n"
      "            [--drivers N]\n"
      "  %s router --port N --node NAME=HOST:PORT [--node ...]\n"
      "            [--partitions N] [--vnodes N] [--state PATH]\n",
      argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  std::string mode = argv[1];
  std::string name = "node";
  uint16_t port = 0;
  uint32_t partitions = 32;
  uint32_t vnodes = 64;
  uint32_t drivers = 2;
  std::string state_path;
  std::vector<Peer> peers;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--name") == 0 && i + 1 < argc) {
      name = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--partitions") == 0 && i + 1 < argc) {
      partitions = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--vnodes") == 0 && i + 1 < argc) {
      vnodes = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--drivers") == 0 && i + 1 < argc) {
      drivers = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--state") == 0 && i + 1 < argc) {
      state_path = argv[++i];
    } else if (std::strcmp(argv[i], "--node") == 0 && i + 1 < argc) {
      Peer peer;
      if (!ParsePeer(argv[++i], &peer)) return Usage(argv[0]);
      peers.push_back(peer);
    } else {
      return Usage(argv[0]);
    }
  }
  if (mode == "node" && port != 0) {
    return RunNode(name, port, partitions, vnodes, drivers);
  }
  if (mode == "router" && port != 0 && !peers.empty()) {
    if (state_path.empty()) {
      state_path = "tman-router-" + std::to_string(port) + ".state";
    }
    return RunRouter(port, peers, partitions, vnodes, state_path);
  }
  return Usage(argv[0]);
}
