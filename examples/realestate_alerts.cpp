// The paper's §2 real-estate scenario, end to end: salespeople register
// join triggers ("tell me when a house appears in a neighborhood I
// represent"), new listings stream in, and alerts fire. Because every
// salesperson's trigger has the same *structure*, all of them share one
// expression signature per data source — the key scalability observation
// of the paper.

#include <cstdio>
#include <string>

#include "core/trigger_manager.h"
#include "util/random.h"

using namespace tman;

namespace {

Status Run() {
  Database db;
  TMAN_RETURN_IF_ERROR(db.CreateTable("salesperson",
                                      Schema({{"spno", DataType::kInt},
                                              {"name", DataType::kVarchar},
                                              {"phone", DataType::kVarchar}}))
                           .status());
  TMAN_RETURN_IF_ERROR(db.CreateTable("house",
                                      Schema({{"hno", DataType::kInt},
                                              {"address", DataType::kVarchar},
                                              {"price", DataType::kFloat},
                                              {"nno", DataType::kInt},
                                              {"spno", DataType::kInt}}))
                           .status());
  TMAN_RETURN_IF_ERROR(db.CreateTable("represents",
                                      Schema({{"spno", DataType::kInt},
                                              {"nno", DataType::kInt}}))
                           .status());

  TriggerManager tman(&db);
  TMAN_RETURN_IF_ERROR(tman.Open());
  TMAN_RETURN_IF_ERROR(tman.DefineLocalTableSource("salesperson").status());
  TMAN_RETURN_IF_ERROR(tman.DefineLocalTableSource("house").status());
  TMAN_RETURN_IF_ERROR(tman.DefineLocalTableSource("represents").status());

  // Populate salespeople and the neighborhoods they represent.
  constexpr int kSalespeople = 20;
  constexpr int kNeighborhoods = 40;
  Random rng(7);
  const char* names[] = {"Iris", "Sam",  "Ada", "Bo",  "Cy",
                         "Dee",  "Eli",  "Fay", "Gus", "Hal",
                         "Ivy",  "Jo",   "Kim", "Lou", "Max",
                         "Nia",  "Ola",  "Pat", "Quin", "Rex"};
  for (int i = 0; i < kSalespeople; ++i) {
    TMAN_RETURN_IF_ERROR(
        db.Insert("salesperson",
                  Tuple({Value::Int(i + 1), Value::String(names[i]),
                         Value::String("555-" + std::to_string(1000 + i))}))
            .status());
    // Each salesperson represents 2 neighborhoods.
    for (int k = 0; k < 2; ++k) {
      TMAN_RETURN_IF_ERROR(
          db.Insert("represents",
                    Tuple({Value::Int(i + 1),
                           Value::Int(static_cast<int64_t>(
                               rng.Uniform(kNeighborhoods)))}))
              .status());
    }
  }
  TMAN_RETURN_IF_ERROR(tman.ProcessPending());  // drain capture traffic

  // One alert trigger per salesperson — the paper's IrisHouseAlert with a
  // different constant each time. All share a single signature.
  for (int i = 0; i < kSalespeople; ++i) {
    std::string cmd =
        "create trigger alert_" + std::string(names[i]) +
        " on insert to house from salesperson s, house h, represents r "
        "when s.name = '" + names[i] + "' and s.spno = r.spno "
        "and r.nno = h.nno "
        "do raise event NewHouseFor" + names[i] + "(h.hno, h.address)";
    TMAN_RETURN_IF_ERROR(tman.ExecuteCommand(cmd).status());
  }

  int alerts = 0;
  tman.events().Register("*", [&alerts](const Event& e) {
    if (alerts < 8) std::printf("  >> %s\n", e.ToString().c_str());
    ++alerts;
  });

  // Stream in new listings.
  constexpr int kHouses = 200;
  std::printf("listing %d houses across %d neighborhoods...\n", kHouses,
              kNeighborhoods);
  for (int h = 0; h < kHouses; ++h) {
    TMAN_RETURN_IF_ERROR(
        db.Insert("house",
                  Tuple({Value::Int(h), Value::String(
                                            std::to_string(h) + " Main St"),
                         Value::Float(100000 + 1000.0 * h),
                         Value::Int(static_cast<int64_t>(
                             rng.Uniform(kNeighborhoods))),
                         Value::Int(0)}))
            .status());
  }
  TMAN_RETURN_IF_ERROR(tman.ProcessPending());

  auto stats = tman.stats();
  std::printf("\n%d salesperson triggers -> %llu signatures in the index\n",
              kSalespeople,
              static_cast<unsigned long long>(
                  stats.predicates.num_signatures));
  std::printf("houses listed: %d, alerts fired: %d\n", kHouses, alerts);
  std::printf("tokens=%llu firings=%llu\n",
              static_cast<unsigned long long>(stats.tokens_processed),
              static_cast<unsigned long long>(stats.rule_firings));
  return Status::OK();
}

}  // namespace

int main() {
  Status s = Run();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
