// HR-policy triggers with execSQL actions, exercising :NEW/:OLD macro
// substitution and asynchronous processing with driver threads: salary
// changes are audited into a table, and a mirror rule keeps a summary
// table in sync — all through trigger actions running SQL against the
// embedded database.

#include <cstdio>

#include "core/trigger_manager.h"
#include "db/sql.h"

using namespace tman;

namespace {

Status Run() {
  Database db;
  TMAN_RETURN_IF_ERROR(
      db.CreateTable("emp", Schema({{"name", DataType::kVarchar},
                                    {"salary", DataType::kFloat},
                                    {"dept", DataType::kInt}}))
          .status());
  TMAN_RETURN_IF_ERROR(
      db.CreateTable("salary_audit",
                     Schema({{"who", DataType::kVarchar},
                             {"old_salary", DataType::kFloat},
                             {"new_salary", DataType::kFloat}}))
          .status());
  TMAN_RETURN_IF_ERROR(
      db.CreateTable("vip", Schema({{"name", DataType::kVarchar},
                                    {"salary", DataType::kFloat}}))
          .status());

  TriggerManagerOptions options;
  options.driver_config.num_drivers = 2;
  options.driver_config.period = std::chrono::milliseconds(5);
  TriggerManager tman(&db, options);
  TMAN_RETURN_IF_ERROR(tman.Open());
  TMAN_RETURN_IF_ERROR(tman.DefineLocalTableSource("emp").status());

  // Policy 1: audit every salary change with before/after images.
  TMAN_RETURN_IF_ERROR(
      tman.ExecuteCommand(
              "create trigger auditSalary from emp on update(emp.salary) "
              "do execSQL 'insert into salary_audit values "
              "(:NEW.emp.name, :OLD.emp.salary, :NEW.emp.salary)'")
          .status());

  // Policy 2: anyone crossing 200k enters the VIP roster.
  TMAN_RETURN_IF_ERROR(
      tman.ExecuteCommand(
              "create trigger vipWatch from emp "
              "when emp.salary > 200000 "
              "do execSQL 'insert into vip values "
              "(:NEW.emp.name, :NEW.emp.salary)'")
          .status());

  // Policy 3: alert on suspicious raises (>50%) — uses arithmetic on the
  // old and new images inside the action arguments.
  TMAN_RETURN_IF_ERROR(
      tman.ExecuteCommand(
              "create trigger bigRaise from emp on update(emp.salary) "
              "do raise event SuspiciousRaise(emp.name, emp.salary)")
          .status());
  tman.events().Register("SuspiciousRaise", [](const Event& e) {
    std::printf("  >> suspicious raise: %s\n", e.ToString().c_str());
  });

  TMAN_RETURN_IF_ERROR(tman.Start());

  // Seed some employees and run salary changes through SQL.
  TMAN_RETURN_IF_ERROR(
      ExecuteSql(&db, "insert into emp values ('bob', 100000, 1), "
                      "('ann', 180000, 1), ('joe', 90000, 2)")
          .status());
  TMAN_RETURN_IF_ERROR(
      ExecuteSql(&db, "update emp set salary = 220000 where name = 'ann'")
          .status());
  TMAN_RETURN_IF_ERROR(
      ExecuteSql(&db, "update emp set salary = 120000 where name = 'bob'")
          .status());
  tman.Drain();
  tman.Stop();

  auto audit = ExecuteSql(&db, "select * from salary_audit");
  TMAN_RETURN_IF_ERROR(audit.status());
  std::printf("salary_audit rows:\n");
  for (const Tuple& row : audit->rows) {
    std::printf("  %s\n", row.ToString().c_str());
  }
  auto vip = ExecuteSql(&db, "select * from vip");
  TMAN_RETURN_IF_ERROR(vip.status());
  std::printf("vip rows:\n");
  for (const Tuple& row : vip->rows) {
    std::printf("  %s\n", row.ToString().c_str());
  }

  auto stats = tman.stats();
  std::printf("firings=%llu sql-actions=%llu\n",
              static_cast<unsigned long long>(stats.rule_firings),
              static_cast<unsigned long long>(stats.actions.sql_statements));
  return Status::OK();
}

}  // namespace

int main() {
  Status s = Run();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
