// The paper's motivating web scenario: a large number of users create
// triggers interactively ("notify me when XYZ crosses my price"), so the
// system must scale to very many triggers. This example creates 100,000
// threshold triggers over a quote stream and processes ticks through the
// predicate index — per-tick cost stays flat because matching is driven
// by expression signatures and constant sets, not by trigger count.

#include <chrono>
#include <cstdio>
#include <string>

#include "core/trigger_manager.h"
#include "util/random.h"

using namespace tman;

namespace {

constexpr int kSymbols = 500;
constexpr int kTriggers = 100000;
constexpr int kTicks = 2000;

std::string SymbolName(int i) { return "SYM" + std::to_string(i); }

Status Run() {
  Database db;
  TriggerManager tman(&db);
  TMAN_RETURN_IF_ERROR(tman.Open());

  Schema quotes({{"symbol", DataType::kVarchar},
                 {"price", DataType::kFloat}});
  DataSourceId ds;
  TMAN_ASSIGN_OR_RETURN(ds, tman.DefineStreamSource("quotes", quotes));

  Random rng(11);
  std::printf("creating %d price-alert triggers over %d symbols...\n",
              kTriggers, kSymbols);
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kTriggers; ++i) {
    std::string symbol = SymbolName(static_cast<int>(rng.Uniform(kSymbols)));
    int threshold = static_cast<int>(50 + rng.Uniform(100));
    std::string cmd = "create trigger sub" + std::to_string(i) +
                      " from quotes when quotes.symbol = '" + symbol +
                      "' and quotes.price > " + std::to_string(threshold) +
                      " do raise event PriceAlert(quotes.symbol, "
                      "quotes.price)";
    TMAN_RETURN_IF_ERROR(tman.ExecuteCommand(cmd).status());
  }
  auto t1 = std::chrono::steady_clock::now();
  double create_s = std::chrono::duration<double>(t1 - t0).count();
  std::printf("created in %.1fs (%.0f triggers/s)\n", create_s,
              kTriggers / create_s);

  auto pstats = tman.predicate_index().stats();
  std::printf("distinct expression signatures: %llu (for %llu predicates)\n",
              static_cast<unsigned long long>(pstats.num_signatures),
              static_cast<unsigned long long>(pstats.num_predicates));

  uint64_t alerts = 0;
  tman.events().Register("PriceAlert", [&alerts](const Event&) { ++alerts; });

  std::printf("streaming %d ticks...\n", kTicks);
  auto t2 = std::chrono::steady_clock::now();
  for (int t = 0; t < kTicks; ++t) {
    std::string symbol = SymbolName(static_cast<int>(rng.Uniform(kSymbols)));
    double price = 40 + static_cast<double>(rng.Uniform(120));
    TMAN_RETURN_IF_ERROR(tman.SubmitUpdate(UpdateDescriptor::Insert(
        ds, Tuple({Value::String(symbol), Value::Float(price)}))));
  }
  TMAN_RETURN_IF_ERROR(tman.ProcessPending());
  auto t3 = std::chrono::steady_clock::now();
  double tick_s = std::chrono::duration<double>(t3 - t2).count();

  auto stats = tman.stats();
  std::printf("%d ticks in %.2fs (%.0f ticks/s); %llu alerts fired\n",
              kTicks, tick_s, kTicks / tick_s,
              static_cast<unsigned long long>(alerts));
  std::printf("cache: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses));
  return Status::OK();
}

}  // namespace

int main() {
  Status s = Run();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
