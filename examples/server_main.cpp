// A standalone TriggerMan server (Figure 1's server process): hosts
// MiniDB plus a TriggerManager with driver threads, and exposes them over
// the wire protocol. Connect with `console --connect host:port` or the
// RemoteClient/RemoteDataSource library.
//
//   server_main [--port N] [--drivers N] [--queue-depth N] [--memory]
//
// --memory switches update staging from the persistent queue table to
// main-memory delivery (faster, no recovery safety; see ROADMAP).
// Runs until stdin closes or a "quit" line arrives.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/trigger_manager.h"
#include "db/database.h"
#include "ipc/server.h"
#include "ipc/socket_transport.h"

using namespace tman;

int main(int argc, char** argv) {
  uint16_t port = 7447;
  uint32_t drivers = 2;
  uint32_t queue_depth = 4096;
  bool persistent = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--drivers") == 0 && i + 1 < argc) {
      drivers = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--queue-depth") == 0 && i + 1 < argc) {
      queue_depth = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--memory") == 0) {
      persistent = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--drivers N] [--queue-depth N] "
                   "[--memory]\n",
                   argv[0]);
      return 2;
    }
  }

  Database db;
  TriggerManagerOptions tmo;
  tmo.persistent_queue = persistent;
  tmo.driver_config.num_cpus = drivers;
  TriggerManager tman(&db, tmo);
  if (auto s = tman.Open(); !s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }
  if (auto s = tman.Start(); !s.ok()) {
    std::fprintf(stderr, "start drivers: %s\n", s.ToString().c_str());
    return 1;
  }

  auto listener = TcpListener::Bind("0.0.0.0", port);
  if (!listener.ok()) {
    std::fprintf(stderr, "bind: %s\n", listener.status().ToString().c_str());
    return 1;
  }
  uint16_t bound = (*listener)->port();
  TmanServerOptions options;
  options.max_queue_depth = queue_depth;
  TmanServer server(&tman, std::move(*listener), options);
  if (auto s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("TriggerMan server listening on port %u (%s staging, %u "
              "drivers, queue depth %u). 'quit' to stop.\n",
              bound, persistent ? "persistent" : "memory", drivers,
              queue_depth);
  std::fflush(stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (line == "stats") {
      auto st = server.stats();
      auto ts = tman.stats();
      std::printf("  conns=%llu frames=%llu updates=%llu deduped=%llu "
                  "events=%llu credits=%llu proto_errors=%llu\n"
                  "  tokens=%llu firings=%llu\n",
                  static_cast<unsigned long long>(st.connections_accepted),
                  static_cast<unsigned long long>(st.frames_received),
                  static_cast<unsigned long long>(st.updates_applied),
                  static_cast<unsigned long long>(st.updates_deduped),
                  static_cast<unsigned long long>(st.events_pushed),
                  static_cast<unsigned long long>(st.credits_granted),
                  static_cast<unsigned long long>(st.protocol_errors),
                  static_cast<unsigned long long>(ts.tokens_processed),
                  static_cast<unsigned long long>(ts.rule_firings));
      std::fflush(stdout);
    }
  }

  server.Stop();
  tman.Stop();
  return 0;
}
