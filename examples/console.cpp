// The TriggerMan console (Figure 1): an interactive program that lets a
// user create triggers, drop them, run SQL against the embedded database,
// and pump trigger processing.
//
// With `--connect host:port` the console attaches to a running
// server_main over the wire protocol instead: commands are executed
// remotely and raised events stream back asynchronously.
//
// Commands:
//   any TriggerMan command  (create trigger ..., drop trigger ...,
//                            define data source ..., enable/disable ...)
//   sql <statement>         run SQL against MiniDB (local mode only)
//   process                 process staged updates now (local mode only)
//   events                  show recently raised events (local mode only)
//   stats                   show system statistics — per-stage latencies,
//                           per-signature organizations, queue deltas
//                           since the previous call (remote mode returns
//                           the manager's portion of the report)
//   adapt [status|run|log|on|off]
//                           adaptive re-optimization control (both modes)
//   ping                    round-trip probe (remote mode only)
//   cluster                 cluster stats — ring ownership, per-node
//                           health, repartitions (remote mode, when
//                           connected to a cluster_main router; answered
//                           by the router itself)
//   quit

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/trigger_manager.h"
#include "db/sql.h"
#include "ipc/remote_client.h"
#include "ipc/socket_transport.h"
#include "util/string_util.h"

using namespace tman;

namespace {

int RunRemoteConsole(const std::string& spec) {
  auto host_port = ParseHostPort(spec);
  if (!host_port.ok()) {
    std::fprintf(stderr, "bad --connect address: %s\n",
                 host_port.status().ToString().c_str());
    return 1;
  }
  RemoteClientOptions options;
  options.client_name = "console";
  options.connector = [host_port] {
    return TcpConnect(host_port->first, host_port->second);
  };
  RemoteClient client(options);
  if (auto s = client.Connect(); !s.ok()) {
    std::fprintf(stderr, "connect %s: %s\n", spec.c_str(),
                 s.ToString().c_str());
    return 1;
  }
  // Stream every event the server raises to the terminal as it happens.
  auto reg = client.RegisterForEvent("*", [](const Event& e) {
    std::printf("\n[event] %s\ntman> ", e.ToString().c_str());
    std::fflush(stdout);
  });
  if (!reg.ok()) {
    std::fprintf(stderr, "event registration failed: %s\n",
                 reg.status().ToString().c_str());
  }
  std::printf("Connected to %s. 'quit' to exit.\n", spec.c_str());

  std::string line;
  while (true) {
    std::printf("tman> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    std::string lower = ToLower(trimmed);
    if (lower == "quit" || lower == "exit") break;
    if (lower == "ping") {
      if (auto s = client.Ping(); !s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
      } else {
        std::printf("pong\n");
      }
      continue;
    }
    auto r = client.Command(trimmed);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
    } else {
      std::printf("%s\n", r->c_str());
    }
  }
  client.Close();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      return RunRemoteConsole(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--connect=", 10) == 0) {
      return RunRemoteConsole(argv[i] + 10);
    }
  }
  Database db;
  TriggerManager tman(&db);
  if (auto s = tman.Open(); !s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("TriggerMan console. 'help' for commands, 'quit' to exit.\n");

  // Queue counters as of the previous `stats` call, so repeated polls show
  // steal and batch-pop *deltas* — what happened since you last looked —
  // next to the lifetime totals.
  TaskQueueStats last_qs;
  std::string line;
  while (true) {
    std::printf("tman> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    std::string lower = ToLower(trimmed);

    if (lower == "quit" || lower == "exit") break;
    if (lower == "help") {
      std::printf(
          "  create trigger <name> [in set] from ... [on ...] [when ...] do "
          "...\n"
          "  create trigger set <name> ['comments']\n"
          "  drop trigger <name> | enable/disable trigger [set] <name>\n"
          "  define data source <name> (<attr> <type>, ...)\n"
          "  adapt [status|run|log|on|off]   adaptive re-optimization\n"
          "  sql <statement>   process   triggers   events   stats   "
          "quit\n");
      continue;
    }
    if (lower == "process") {
      if (auto s = tman.ProcessPending(); !s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
      } else {
        std::printf("ok\n");
      }
      continue;
    }
    if (lower == "triggers") {
      auto rows = tman.catalog().AllTriggers();
      if (!rows.ok()) {
        std::printf("error: %s\n", rows.status().ToString().c_str());
        continue;
      }
      for (const auto& row : *rows) {
        std::printf("  [%llu] %s (%s) %s\n",
                    static_cast<unsigned long long>(row.trigger_id),
                    row.name.c_str(),
                    row.is_enabled ? "enabled" : "disabled",
                    row.creation_date.c_str());
      }
      continue;
    }
    if (lower == "events") {
      for (const Event& e : tman.events().History()) {
        std::printf("  %s\n", e.ToString().c_str());
      }
      continue;
    }
    if (lower == "stats") {
      auto st = tman.stats();
      // Core counters, per-stage latencies, adaptation state, and
      // per-signature organizations come from the manager's own report
      // (the same text a remote `stats` returns).
      if (auto r = tman.ExecuteCommand("stats"); r.ok()) {
        std::printf("%s\n", r->c_str());
      }
      std::printf(
          "  actions=%llu\n",
          static_cast<unsigned long long>(st.actions.actions_executed));
      // Task queue: the global ledger (lifetime totals plus what changed
      // since the last `stats` call), then each shard's depth and how
      // much of its work was stolen by drivers homed elsewhere.
      auto qs = tman.task_queue().stats();
      std::printf(
          "  queue: pushed=%llu popped=%llu steals=%llu (+%llu) "
          "high-water=%llu batch-pops=%llu (+%llu) avg-batch=%.1f\n",
          static_cast<unsigned long long>(qs.pushed),
          static_cast<unsigned long long>(qs.popped),
          static_cast<unsigned long long>(qs.steals),
          static_cast<unsigned long long>(qs.steals - last_qs.steals),
          static_cast<unsigned long long>(qs.max_size),
          static_cast<unsigned long long>(qs.batch_pops),
          static_cast<unsigned long long>(qs.batch_pops -
                                          last_qs.batch_pops),
          qs.batch_pops == 0
              ? 0.0
              : static_cast<double>(qs.batch_pop_tasks) / qs.batch_pops);
      last_qs = qs;
      auto shards = tman.task_queue().shard_stats();
      for (size_t i = 0; i < shards.size(); ++i) {
        std::printf(
            "    shard %zu: depth=%zu pushed=%llu popped=%llu stolen=%llu "
            "batch-pops=%llu avg-batch=%.1f\n",
            i, shards[i].depth,
            static_cast<unsigned long long>(shards[i].pushed),
            static_cast<unsigned long long>(shards[i].popped),
            static_cast<unsigned long long>(shards[i].steals),
            static_cast<unsigned long long>(shards[i].batch_pops),
            shards[i].batch_pops == 0
                ? 0.0
                : static_cast<double>(shards[i].batch_pop_tasks) /
                      shards[i].batch_pops);
      }
      uint64_t pins = st.cache.hits + st.cache.misses;
      std::printf(
          "  cache: hits=%llu misses=%llu evictions=%llu hit-rate=%.1f%% "
          "(%u shards)\n",
          static_cast<unsigned long long>(st.cache.hits),
          static_cast<unsigned long long>(st.cache.misses),
          static_cast<unsigned long long>(st.cache.evictions),
          pins == 0 ? 0.0 : 100.0 * st.cache.hits / pins,
          tman.cache().num_shards());
      auto stripes = tman.predicate_index().stripe_stats();
      std::printf("  predicate index stripes (%zu):", stripes.size());
      for (const auto& s : stripes) {
        std::printf(" %zu/%zu", s.num_sources, s.num_predicates);
      }
      std::printf("  (sources/predicates per stripe)\n");
      continue;
    }
    if (StartsWith(lower, "sql ")) {
      auto r = ExecuteSql(&db, trimmed.substr(4));
      if (!r.ok()) {
        std::printf("error: %s\n", r.status().ToString().c_str());
        continue;
      }
      if (!r->column_names.empty()) {
        std::printf("  %s\n", Join(r->column_names, " | ").c_str());
        for (const Tuple& row : r->rows) {
          std::printf("  %s\n", row.ToString().c_str());
        }
      }
      std::printf("ok (%llu rows)\n",
                  static_cast<unsigned long long>(r->rows_affected));
      // `define data source` needs the table to exist first; remind the
      // user triggers see updates after `process`.
      continue;
    }

    auto r = tman.ExecuteCommand(trimmed);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
    } else {
      std::printf("%s\n", r->c_str());
    }
  }
  return 0;
}
