// The TriggerMan console (Figure 1): an interactive program that lets a
// user create triggers, drop them, run SQL against the embedded database,
// and pump trigger processing.
//
// Commands:
//   any TriggerMan command  (create trigger ..., drop trigger ...,
//                            define data source ..., enable/disable ...)
//   sql <statement>         run SQL against MiniDB
//   process                 process staged updates now
//   events                  show recently raised events
//   stats                   show system statistics
//   quit

#include <cstdio>
#include <iostream>
#include <string>

#include "core/trigger_manager.h"
#include "db/sql.h"
#include "util/string_util.h"

using namespace tman;

int main() {
  Database db;
  TriggerManager tman(&db);
  if (auto s = tman.Open(); !s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("TriggerMan console. 'help' for commands, 'quit' to exit.\n");

  std::string line;
  while (true) {
    std::printf("tman> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    std::string lower = ToLower(trimmed);

    if (lower == "quit" || lower == "exit") break;
    if (lower == "help") {
      std::printf(
          "  create trigger <name> [in set] from ... [on ...] [when ...] do "
          "...\n"
          "  create trigger set <name> ['comments']\n"
          "  drop trigger <name> | enable/disable trigger [set] <name>\n"
          "  define data source <name> (<attr> <type>, ...)\n"
          "  sql <statement>   process   triggers   events   stats   "
          "quit\n");
      continue;
    }
    if (lower == "process") {
      if (auto s = tman.ProcessPending(); !s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
      } else {
        std::printf("ok\n");
      }
      continue;
    }
    if (lower == "triggers") {
      auto rows = tman.catalog().AllTriggers();
      if (!rows.ok()) {
        std::printf("error: %s\n", rows.status().ToString().c_str());
        continue;
      }
      for (const auto& row : *rows) {
        std::printf("  [%llu] %s (%s) %s\n",
                    static_cast<unsigned long long>(row.trigger_id),
                    row.name.c_str(),
                    row.is_enabled ? "enabled" : "disabled",
                    row.creation_date.c_str());
      }
      continue;
    }
    if (lower == "events") {
      for (const Event& e : tman.events().History()) {
        std::printf("  %s\n", e.ToString().c_str());
      }
      continue;
    }
    if (lower == "stats") {
      auto st = tman.stats();
      std::printf(
          "  updates=%llu tokens=%llu firings=%llu actions=%llu\n"
          "  signatures=%llu predicates=%llu\n"
          "  cache: hits=%llu misses=%llu evictions=%llu\n",
          static_cast<unsigned long long>(st.updates_submitted),
          static_cast<unsigned long long>(st.tokens_processed),
          static_cast<unsigned long long>(st.rule_firings),
          static_cast<unsigned long long>(st.actions.actions_executed),
          static_cast<unsigned long long>(st.predicates.num_signatures),
          static_cast<unsigned long long>(st.predicates.num_predicates),
          static_cast<unsigned long long>(st.cache.hits),
          static_cast<unsigned long long>(st.cache.misses),
          static_cast<unsigned long long>(st.cache.evictions));
      continue;
    }
    if (StartsWith(lower, "sql ")) {
      auto r = ExecuteSql(&db, trimmed.substr(4));
      if (!r.ok()) {
        std::printf("error: %s\n", r.status().ToString().c_str());
        continue;
      }
      if (!r->column_names.empty()) {
        std::printf("  %s\n", Join(r->column_names, " | ").c_str());
        for (const Tuple& row : r->rows) {
          std::printf("  %s\n", row.ToString().c_str());
        }
      }
      std::printf("ok (%llu rows)\n",
                  static_cast<unsigned long long>(r->rows_affected));
      // `define data source` needs the table to exist first; remind the
      // user triggers see updates after `process`.
      continue;
    }

    auto r = tman.ExecuteCommand(trimmed);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
    } else {
      std::printf("%s\n", r->c_str());
    }
  }
  return 0;
}
